package engine

import (
	"errors"
	"time"

	"cloudybench/internal/sim"
)

// LockMode is a row-lock mode under two-phase locking.
type LockMode uint8

// Lock modes.
const (
	LockShared LockMode = iota + 1
	LockExclusive
)

func (m LockMode) String() string {
	if m == LockShared {
		return "S"
	}
	return "X"
}

// ErrLockTimeout is returned when a lock wait exceeds the lock table's
// timeout — the engine's deadlock safety net, mirroring real databases'
// lock_timeout behaviour. Transactions receiving it must abort.
var ErrLockTimeout = errors.New("engine: lock wait timeout")

// DefaultLockTimeout bounds lock waits. CloudyBench's transactions acquire
// locks in a globally consistent order, so genuine deadlocks do not occur;
// the timeout guards against workload-programming mistakes.
const DefaultLockTimeout = 5 * time.Second

type lockRequest struct {
	txn     uint64
	mode    LockMode
	upgrade bool
	granted bool
	timeout bool
	cond    *sim.Cond
}

type lockState struct {
	// key is the canonical interned key string for this lock. Transactions
	// record it in their lock sets instead of re-allocating the composite
	// key per acquisition: the string is allocated once per distinct key
	// for the lifetime of the lock table (states are retained when they
	// drain — see Release).
	key     string
	holders map[uint64]LockMode
	queue   []*lockRequest
}

// LockTable is a simulation-aware row lock manager with shared/exclusive
// modes, FIFO waiting, lock upgrade, and timeout-based deadlock recovery.
type LockTable struct {
	s       *sim.Sim
	locks   map[string]*lockState
	timeout time.Duration

	waits    int64 // lock acquisitions that had to wait
	timeouts int64

	// OnWait, if set, observes every lock acquisition that actually
	// blocked: it runs on the waiter's process after the wait resolves
	// (granted or timed out) with the wait's virtual-time interval. Like
	// the DB Observer it is a pure callback — implementations must not
	// sleep or block, so attaching one cannot perturb the lock schedule.
	OnWait func(p *sim.Proc, txn uint64, key string, start, end time.Duration)
}

// NewLockTable returns a lock table bound to the simulation with the
// default timeout.
func NewLockTable(s *sim.Sim) *LockTable {
	return &LockTable{s: s, locks: make(map[string]*lockState), timeout: DefaultLockTimeout}
}

// SetTimeout overrides the lock-wait timeout.
func (lt *LockTable) SetTimeout(d time.Duration) { lt.timeout = d }

// compatibleLocked reports whether txn may be granted mode on st right now.
func (st *lockState) compatible(txn uint64, mode LockMode) bool {
	for holder, hm := range st.holders {
		if holder == txn {
			continue
		}
		if mode == LockExclusive || hm == LockExclusive {
			return false
		}
	}
	return true
}

// Acquire obtains a lock on key for txn in the given mode, blocking in
// virtual time behind conflicting holders. Re-acquiring an already-held
// lock is a no-op; holding S and requesting X upgrades (jumping the queue,
// as upgrades must to avoid guaranteed deadlock between two upgraders —
// which the timeout still resolves).
func (lt *LockTable) Acquire(p *sim.Proc, txn uint64, key string, mode LockMode) error {
	st, ok := lt.locks[key]
	if !ok {
		st = &lockState{key: key, holders: make(map[uint64]LockMode)}
		lt.locks[key] = st
	}
	_, err := lt.acquireState(p, txn, st, mode)
	return err
}

// AcquireKey is Acquire probing with raw key bytes: the map access compiles
// to an allocation-free lookup, and the state's interned canonical string is
// returned so callers can record the lock without materializing the key. The
// transaction hot loop builds composite keys into a reusable scratch buffer
// and acquires through here.
func (lt *LockTable) AcquireKey(p *sim.Proc, txn uint64, key []byte, mode LockMode) (string, error) {
	st, ok := lt.locks[string(key)]
	if !ok {
		st = &lockState{key: string(key), holders: make(map[uint64]LockMode)}
		lt.locks[st.key] = st
	}
	return lt.acquireState(p, txn, st, mode)
}

// acquireState grants or waits for st in the given mode, returning the
// canonical key string.
func (lt *LockTable) acquireState(p *sim.Proc, txn uint64, st *lockState, mode LockMode) (string, error) {
	key := st.key
	if held, ok := st.holders[txn]; ok && (held == LockExclusive || held == mode) {
		return key, nil // already held at sufficient strength
	}
	_, upgrade := st.holders[txn]
	// Grant immediately when compatible and not queue-jumping non-upgrades.
	if st.compatible(txn, mode) && (upgrade || len(st.queue) == 0) {
		st.holders[txn] = mode
		return key, nil
	}
	req := &lockRequest{txn: txn, mode: mode, upgrade: upgrade, cond: sim.NewCond(lt.s)}
	if upgrade {
		st.queue = append([]*lockRequest{req}, st.queue...)
	} else {
		st.queue = append(st.queue, req)
	}
	lt.waits++
	var waitStart time.Duration
	if lt.OnWait != nil {
		waitStart = lt.s.Elapsed()
	}
	// Timeout watcher: marks the request dead if it waits too long.
	lt.s.Go("lock-timeout", func(w *sim.Proc) {
		w.Sleep(lt.timeout)
		if req.granted || req.timeout {
			return
		}
		req.timeout = true
		for i, q := range st.queue {
			if q == req {
				st.queue = append(st.queue[:i], st.queue[i+1:]...)
				break
			}
		}
		lt.timeouts++
		req.cond.Signal()
	})
	for !req.granted && !req.timeout {
		req.cond.Wait(p)
	}
	if lt.OnWait != nil {
		lt.OnWait(p, txn, key, waitStart, lt.s.Elapsed())
	}
	if req.timeout {
		return key, ErrLockTimeout
	}
	return key, nil
}

// grantWaiters admits queued requests in FIFO order while compatible.
func (lt *LockTable) grantWaiters(key string, st *lockState) {
	for len(st.queue) > 0 {
		req := st.queue[0]
		if !st.compatible(req.txn, req.mode) {
			return
		}
		st.queue = st.queue[1:]
		st.holders[req.txn] = req.mode
		req.granted = true
		req.cond.Signal()
	}
}

// Release drops txn's lock on key, waking eligible waiters. Drained states
// are retained (not deleted) so the canonical key string survives: the
// workloads hammer a hot working set, and keeping the state makes the next
// acquisition of the same key allocation-free.
func (lt *LockTable) Release(txn uint64, key string) {
	st, ok := lt.locks[key]
	if !ok {
		return
	}
	delete(st.holders, txn)
	lt.grantWaiters(key, st)
}

// ReleaseAll drops every lock named in keys for txn (commit/abort).
func (lt *LockTable) ReleaseAll(txn uint64, keys []string) {
	for _, k := range keys {
		lt.Release(txn, k)
	}
}

// Stats returns the number of waits and timeouts observed.
func (lt *LockTable) Stats() (waits, timeouts int64) { return lt.waits, lt.timeouts }

// HeldLocks returns the number of keys with at least one holder or waiter
// (for tests asserting clean release). Drained interned states don't count.
func (lt *LockTable) HeldLocks() int {
	n := 0
	for _, st := range lt.locks {
		if len(st.holders) > 0 || len(st.queue) > 0 {
			n++
		}
	}
	return n
}
