package engine

import (
	"errors"
	"testing"
	"time"

	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

func newTestDB(s *sim.Sim, t *testing.T) (*DB, *Table) {
	t.Helper()
	db := NewDB(s)
	tbl, err := db.CreateTable(testSchema(), 100, genOrder)
	if err != nil {
		t.Fatal(err)
	}
	return db, tbl
}

func TestTxnCommitAppendsWAL(t *testing.T) {
	s := sim.New(epoch)
	db, tbl := newTestDB(s, t)
	s.Go("t", func(p *sim.Proc) {
		txn := db.Begin(p)
		id := tbl.NextAutoID()
		if _, err := txn.Insert(tbl, genOrder(id)); err != nil {
			t.Error(err)
			return
		}
		if _, err := txn.Update(tbl, IntKey(5), Row{Int(5), Str("PAID")}); err != nil {
			t.Error(err)
			return
		}
		wantBytes := txn.WALBytes()
		recs, err := txn.Commit()
		if err != nil {
			t.Error(err)
			return
		}
		if len(recs) != 3 { // insert, update, commit
			t.Errorf("committed %d records, want 3", len(recs))
		}
		// WALBytes prices what the commit fsync makes durable: the logged
		// records with their undo images, not the Prior-stripped published
		// copies.
		gotBytes := 0
		for _, rec := range db.Log().Read(0, 0) {
			gotBytes += rec.Size()
		}
		if gotBytes != wantBytes {
			t.Errorf("WALBytes = %d, log holds %d", wantBytes, gotBytes)
		}
		for i := range recs {
			if recs[i].Prior != nil {
				t.Errorf("published record %d carries a prior image", i)
			}
		}
		if recs[2].Type != storage.RecCommit {
			t.Error("last record not commit")
		}
		if db.Log().DurableLSN() != db.Log().Head() {
			t.Error("commit did not move the fsync barrier to head")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if db.Log().Head() != 3 {
		t.Fatalf("log head = %d, want 3", db.Log().Head())
	}
	commits, aborts := db.Stats()
	if commits != 1 || aborts != 0 {
		t.Fatalf("stats = %d/%d", commits, aborts)
	}
	if db.Locks().HeldLocks() != 0 {
		t.Fatal("locks leaked after commit")
	}
}

func TestTxnReadOnlyCommitWritesNothing(t *testing.T) {
	s := sim.New(epoch)
	db, tbl := newTestDB(s, t)
	s.Go("t", func(p *sim.Proc) {
		txn := db.Begin(p)
		row, _, err := txn.Get(tbl, IntKey(42))
		if err != nil || row[0].I != 42 {
			t.Errorf("get: %v %v", row, err)
		}
		recs, err := txn.Commit()
		if err != nil || recs != nil {
			t.Errorf("read-only commit: %v %v", recs, err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if db.Log().Head() != 0 {
		t.Fatal("read-only txn wrote WAL")
	}
}

func TestTxnAbortUndoesEverything(t *testing.T) {
	s := sim.New(epoch)
	db, tbl := newTestDB(s, t)
	s.Go("t", func(p *sim.Proc) {
		txn := db.Begin(p)
		id := tbl.NextAutoID()
		txn.Insert(tbl, genOrder(id))
		txn.Update(tbl, IntKey(5), Row{Int(5), Str("PAID")})
		txn.Delete(tbl, IntKey(6))
		if err := txn.Abort(); err != nil {
			t.Error(err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tbl.LiveRows() != 100 {
		t.Fatalf("live after abort = %d, want 100", tbl.LiveRows())
	}
	if _, _, ok := tbl.Get(IntKey(101)); ok {
		t.Fatal("aborted insert visible")
	}
	row, _, _ := tbl.Get(IntKey(5))
	if row[1].S != "NEW" {
		t.Fatal("aborted update visible")
	}
	if _, _, ok := tbl.Get(IntKey(6)); !ok {
		t.Fatal("aborted delete still hides row")
	}
	// Write-ahead logging puts the op records in the log before the txn
	// decides its fate; the abort appends a marker so recovery skips them.
	recs := db.Log().Read(0, 0)
	if len(recs) != 4 || recs[3].Type != storage.RecAbort {
		t.Fatalf("log after abort: %d records, last %v; want 4 ending in ABORT", len(recs), recs[len(recs)-1].Type)
	}
	if db.Log().DurableLSN() != 0 {
		t.Fatal("abort moved the fsync barrier")
	}
	if db.Locks().HeldLocks() != 0 {
		t.Fatal("locks leaked after abort")
	}
}

func TestTxnDoneErrors(t *testing.T) {
	s := sim.New(epoch)
	db, tbl := newTestDB(s, t)
	s.Go("t", func(p *sim.Proc) {
		txn := db.Begin(p)
		txn.Commit()
		if _, _, err := txn.Get(tbl, IntKey(1)); !errors.Is(err, ErrTxnDone) {
			t.Errorf("get after commit: %v", err)
		}
		if _, err := txn.Insert(tbl, genOrder(999)); !errors.Is(err, ErrTxnDone) {
			t.Errorf("insert after commit: %v", err)
		}
		if _, err := txn.Commit(); !errors.Is(err, ErrTxnDone) {
			t.Errorf("double commit: %v", err)
		}
		if err := txn.Abort(); !errors.Is(err, ErrTxnDone) {
			t.Errorf("abort after commit: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestTxnIsolationWriterBlocksReader(t *testing.T) {
	s := sim.New(epoch)
	db, tbl := newTestDB(s, t)
	var readAt time.Duration
	var readStatus string
	s.Go("writer", func(p *sim.Proc) {
		txn := db.Begin(p)
		txn.Update(tbl, IntKey(5), Row{Int(5), Str("PAID")})
		p.Sleep(100 * time.Millisecond) // hold X lock across time
		txn.Commit()
	})
	s.Go("reader", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		txn := db.Begin(p)
		row, _, err := txn.Get(tbl, IntKey(5))
		if err != nil {
			t.Error(err)
			return
		}
		readAt = p.Elapsed()
		readStatus = row[1].S
		txn.Commit()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if readAt != 100*time.Millisecond {
		t.Fatalf("reader unblocked at %v, want 100ms (after writer commit)", readAt)
	}
	if readStatus != "PAID" {
		t.Fatalf("reader saw %q, want committed PAID", readStatus)
	}
}

func TestReplicaApplyFollowsPrimary(t *testing.T) {
	s := sim.New(epoch)
	primary, ptbl := newTestDB(s, t)
	replica := NewDB(s)
	rtbl, err := replica.CreateTable(testSchema(), 100, genOrder)
	if err != nil {
		t.Fatal(err)
	}
	s.Go("t", func(p *sim.Proc) {
		txn := primary.Begin(p)
		id := ptbl.NextAutoID()
		txn.Insert(ptbl, genOrder(id))
		txn.Update(ptbl, IntKey(5), Row{Int(5), Str("PAID")})
		txn.Delete(ptbl, IntKey(6))
		txn.Commit()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	for _, rec := range primary.Log().Read(0, 0) {
		if err := replica.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	// Replica state must match primary for every touched key.
	for _, id := range []int64{5, 6, 101} {
		pr, pPage, pOK := ptbl.Get(IntKey(id))
		rr, rPage, rOK := rtbl.Get(IntKey(id))
		if pOK != rOK {
			t.Fatalf("id %d: visibility primary=%v replica=%v", id, pOK, rOK)
		}
		if pOK && (!pr.Equal(rr) || pPage != rPage) {
			t.Fatalf("id %d: rows/pages diverge: %v@%v vs %v@%v", id, pr, pPage, rr, rPage)
		}
	}
	if rtbl.LiveRows() != ptbl.LiveRows() {
		t.Fatalf("live rows diverge: %d vs %d", rtbl.LiveRows(), ptbl.LiveRows())
	}
	// Replica lock-free read API.
	row, _, ok := replica.Read("orders", IntKey(5))
	if !ok || row[1].S != "PAID" {
		t.Fatalf("replica read: %v %v", row, ok)
	}
}

func TestApplyUnknownTableErrors(t *testing.T) {
	s := sim.New(epoch)
	db := NewDB(s)
	err := db.Apply(storage.Record{Type: storage.RecInsert, Table: 99})
	if err == nil {
		t.Fatal("apply to unknown table succeeded")
	}
	// Non-data records are no-ops even for unknown tables.
	if err := db.Apply(storage.Record{Type: storage.RecCommit, Table: 99}); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTableDuplicateName(t *testing.T) {
	s := sim.New(epoch)
	db, _ := newTestDB(s, t)
	if _, err := db.CreateTable(testSchema(), 0, nil); err == nil {
		t.Fatal("duplicate table name accepted")
	}
	if db.Table("orders") == nil || db.Table("nope") != nil {
		t.Fatal("Table lookup")
	}
}

func TestTxnGetMissingRowReturnsPageForCharging(t *testing.T) {
	s := sim.New(epoch)
	db, tbl := newTestDB(s, t)
	s.Go("t", func(p *sim.Proc) {
		txn := db.Begin(p)
		tbl.Delete(IntKey(7)) // tombstone outside txn for test setup
		_, page, err := txn.Get(tbl, IntKey(7))
		if !errors.Is(err, ErrRowNotFound) {
			t.Errorf("err = %v", err)
		}
		if page != tbl.PageOfBase(7) {
			t.Errorf("missing-row probe page = %v", page)
		}
		txn.Abort()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentTransfersPreserveInvariant(t *testing.T) {
	// Credit-transfer stress: total credit across accounts is invariant
	// under concurrent committed transfers (atomicity + isolation).
	s := sim.New(epoch)
	db := NewDB(s)
	schema := &Schema{
		Name:        "customer",
		Cols:        []Column{{Name: "C_ID", Kind: KindInt}, {Name: "C_CREDIT", Kind: KindFloat}},
		KeyCols:     []int{0},
		AvgRowBytes: 32,
	}
	tbl, err := db.CreateTable(schema, 10, func(id int64) Row {
		return Row{Int(id), Float(100)}
	})
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	for w := 0; w < workers; w++ {
		w := w
		s.Go("transfer", func(p *sim.Proc) {
			for i := 0; i < 50; i++ {
				// Move 1 credit from account a to account b; lock in id
				// order to stay deadlock-free.
				a := int64((w+i)%10) + 1
				b := int64((w+i+1)%10) + 1
				if a > b {
					a, b = b, a
				}
				if a == b {
					continue
				}
				txn := db.Begin(p)
				ra, _, err := txn.Get(tbl, IntKey(a))
				if err != nil {
					txn.Abort()
					continue
				}
				rb, _, err := txn.Get(tbl, IntKey(b))
				if err != nil {
					txn.Abort()
					continue
				}
				txn.Update(tbl, IntKey(a), Row{Int(a), Float(ra[1].F - 1)})
				txn.Update(tbl, IntKey(b), Row{Int(b), Float(rb[1].F + 1)})
				if i%7 == 0 {
					txn.Abort() // aborts must not break the invariant
				} else {
					txn.Commit()
				}
				p.Sleep(time.Millisecond)
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	var total float64
	tbl.Scan(1, 10, func(id int64, r Row) bool {
		total += r[1].F
		return true
	})
	if total != 1000 {
		t.Fatalf("credit total = %v, want 1000 (conservation violated)", total)
	}
}

// TestAbortRestoresDeltaOverlayExactly: rollback must leave the delta
// overlay byte-identical to its pre-transaction state, not merely restore
// the visible values. Materializing a base row's before-image as a delta
// entry on abort would diverge the overlay from replicas — they never hear
// about aborted writes — and fail the convergence invariant after a
// fail-over freezes the aborting primary's delta.
func TestAbortRestoresDeltaOverlayExactly(t *testing.T) {
	s := sim.New(epoch)
	db, tbl := newTestDB(s, t)
	s.Go("t", func(p *sim.Proc) {
		// First-ever touches of base-resident rows, then abort: the overlay
		// must return to empty.
		txn := db.Begin(p)
		txn.Update(tbl, IntKey(7), Row{Int(7), Str("PAID")})
		txn.Delete(tbl, IntKey(8))
		txn.Abort()
		if n := tbl.DeltaLen(); n != 0 {
			t.Errorf("delta entries after aborting first-touch writes = %d, want 0", n)
		}

		// A committed delete of a delta-only row leaves a tombstone; an
		// aborted re-insert over it must put the tombstone back, not drop it.
		id := tbl.NextAutoID()
		txn = db.Begin(p)
		txn.Insert(tbl, genOrder(id))
		txn.Commit()
		txn = db.Begin(p)
		txn.Delete(tbl, IntKey(id))
		txn.Commit()
		before := tbl.DeltaLen()
		txn = db.Begin(p)
		txn.Insert(tbl, genOrder(id))
		txn.Abort()
		if n := tbl.DeltaLen(); n != before {
			t.Errorf("delta entries after aborted re-insert = %d, want %d (tombstone dropped)", n, before)
		}
		if _, _, ok := tbl.Get(IntKey(id)); ok {
			t.Error("aborted re-insert visible over tombstone")
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}
