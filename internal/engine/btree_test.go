package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBTreeBasicSetGetDelete(t *testing.T) {
	bt := NewBTree[string]()
	if _, ok := bt.Get(IntKey(1)); ok {
		t.Fatal("empty tree returned a value")
	}
	if old, replaced := bt.Set(IntKey(1), "a"); replaced || old != "" {
		t.Fatal("fresh set reported replacement")
	}
	if old, replaced := bt.Set(IntKey(1), "b"); !replaced || old != "a" {
		t.Fatalf("replace returned %q/%v", old, replaced)
	}
	if v, ok := bt.Get(IntKey(1)); !ok || v != "b" {
		t.Fatalf("get = %q/%v", v, ok)
	}
	if bt.Len() != 1 {
		t.Fatalf("len = %d, want 1", bt.Len())
	}
	if old, deleted := bt.Delete(IntKey(1)); !deleted || old != "b" {
		t.Fatalf("delete = %q/%v", old, deleted)
	}
	if bt.Len() != 0 {
		t.Fatalf("len after delete = %d", bt.Len())
	}
	if _, deleted := bt.Delete(IntKey(1)); deleted {
		t.Fatal("double delete reported success")
	}
}

func TestBTreeLargeSequentialAndReverse(t *testing.T) {
	for name, order := range map[string]func(i, n int) int64{
		"ascending":  func(i, n int) int64 { return int64(i) },
		"descending": func(i, n int) int64 { return int64(n - i) },
	} {
		bt := NewBTree[int64]()
		const n = 10000
		for i := 0; i < n; i++ {
			id := order(i, n)
			bt.Set(IntKey(id), id*10)
		}
		if bt.Len() != n {
			t.Fatalf("%s: len = %d, want %d", name, bt.Len(), n)
		}
		for i := 0; i < n; i++ {
			id := order(i, n)
			v, ok := bt.Get(IntKey(id))
			if !ok || v != id*10 {
				t.Fatalf("%s: get(%d) = %d/%v", name, id, v, ok)
			}
		}
	}
}

func TestBTreeMinMax(t *testing.T) {
	bt := NewBTree[int]()
	if _, _, ok := bt.Min(); ok {
		t.Fatal("Min on empty tree")
	}
	if _, _, ok := bt.Max(); ok {
		t.Fatal("Max on empty tree")
	}
	for _, id := range []int64{5, 1, 9, 3, 7} {
		bt.Set(IntKey(id), int(id))
	}
	if k, v, ok := bt.Min(); !ok || v != 1 {
		t.Fatalf("Min = %v %d %v", k, v, ok)
	}
	if k, v, ok := bt.Max(); !ok || v != 9 {
		t.Fatalf("Max = %v %d %v", k, v, ok)
	}
}

func TestBTreeAscendRange(t *testing.T) {
	bt := NewBTree[int64]()
	for i := int64(1); i <= 100; i++ {
		bt.Set(IntKey(i), i)
	}
	var got []int64
	bt.AscendRange(IntKey(10), IntKey(20), func(k Key, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 10 || got[0] != 10 || got[9] != 19 {
		t.Fatalf("range [10,20) = %v", got)
	}
	// Full scan in order.
	got = got[:0]
	bt.AscendRange(nil, nil, func(k Key, v int64) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 100 {
		t.Fatalf("full scan returned %d keys", len(got))
	}
	for i, v := range got {
		if v != int64(i+1) {
			t.Fatalf("scan out of order at %d: %d", i, v)
		}
	}
	// Early stop.
	count := 0
	bt.AscendRange(nil, nil, func(k Key, v int64) bool {
		count++
		return count < 5
	})
	if count != 5 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestBTreeRandomizedAgainstMap(t *testing.T) {
	r := rand.New(rand.NewSource(12345))
	bt := NewBTree[int64]()
	ref := make(map[int64]int64)
	const ops = 50000
	for i := 0; i < ops; i++ {
		id := int64(r.Intn(2000))
		switch r.Intn(3) {
		case 0, 1: // set twice as often as delete
			v := int64(i)
			_, replaced := bt.Set(IntKey(id), v)
			if _, exists := ref[id]; exists != replaced {
				t.Fatalf("op %d: replaced=%v, ref exists=%v", i, replaced, exists)
			}
			ref[id] = v
		case 2:
			old, deleted := bt.Delete(IntKey(id))
			refOld, exists := ref[id]
			if deleted != exists {
				t.Fatalf("op %d: deleted=%v, ref exists=%v", i, deleted, exists)
			}
			if deleted && old != refOld {
				t.Fatalf("op %d: deleted value %d, ref %d", i, old, refOld)
			}
			delete(ref, id)
		}
		if bt.Len() != len(ref) {
			t.Fatalf("op %d: len=%d ref=%d", i, bt.Len(), len(ref))
		}
	}
	// Final full verification including iteration order.
	var ids []int64
	for id := range ref {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var scanned []int64
	bt.AscendRange(nil, nil, func(k Key, v int64) bool {
		id, ok := DecodeIntKey(k)
		if !ok {
			t.Fatal("bad key in scan")
		}
		scanned = append(scanned, id)
		return true
	})
	if len(scanned) != len(ids) {
		t.Fatalf("scan count %d, ref %d", len(scanned), len(ids))
	}
	for i := range ids {
		if scanned[i] != ids[i] {
			t.Fatalf("scan[%d] = %d, want %d", i, scanned[i], ids[i])
		}
	}
}

func TestBTreePropertySetDeleteSequences(t *testing.T) {
	check := func(seed int64, nOps uint16) bool {
		r := rand.New(rand.NewSource(seed))
		bt := NewBTree[int]()
		ref := make(map[int64]int)
		n := int(nOps%500) + 100
		for i := 0; i < n; i++ {
			id := int64(r.Intn(100))
			if r.Intn(2) == 0 {
				bt.Set(IntKey(id), i)
				ref[id] = i
			} else {
				bt.Delete(IntKey(id))
				delete(ref, id)
			}
		}
		if bt.Len() != len(ref) {
			return false
		}
		for id, v := range ref {
			got, ok := bt.Get(IntKey(id))
			if !ok || got != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBTreeCompositeStringKeys(t *testing.T) {
	bt := NewBTree[string]()
	keys := []Key{
		EncodeKey(Int(1), Str("alpha")),
		EncodeKey(Int(1), Str("beta")),
		EncodeKey(Int(2), Str("alpha")),
		EncodeKey(Str("z")),
	}
	for i, k := range keys {
		bt.Set(k, fmt.Sprint(i))
	}
	for i, k := range keys {
		v, ok := bt.Get(k)
		if !ok || v != fmt.Sprint(i) {
			t.Fatalf("composite key %d: %q/%v", i, v, ok)
		}
	}
	// Range over (1, *) picks exactly the two int-1 keys.
	var got []string
	bt.AscendRange(EncodeKey(Int(1)), EncodeKey(Int(2)), func(k Key, v string) bool {
		got = append(got, v)
		return true
	})
	if len(got) != 2 || got[0] != "0" || got[1] != "1" {
		t.Fatalf("prefix range = %v", got)
	}
}

func TestKeyEncodingOrder(t *testing.T) {
	// Encoded comparison must match semantic comparison for ints including
	// negatives, and for strings including embedded zero bytes and prefixes.
	intCases := []int64{-1 << 62, -100, -1, 0, 1, 7, 1 << 40}
	for i := 1; i < len(intCases); i++ {
		a, b := IntKey(intCases[i-1]), IntKey(intCases[i])
		if string(a) >= string(b) {
			t.Fatalf("int key order broken: %d !< %d", intCases[i-1], intCases[i])
		}
	}
	strCases := []string{"", "a", "a\x00", "a\x00b", "ab", "b"}
	for i := 1; i < len(strCases); i++ {
		a := EncodeKey(Str(strCases[i-1]))
		b := EncodeKey(Str(strCases[i]))
		if string(a) >= string(b) {
			t.Fatalf("string key order broken: %q !< %q", strCases[i-1], strCases[i])
		}
	}
}

func TestKeyIntRoundTrip(t *testing.T) {
	check := func(v int64) bool {
		got, ok := DecodeIntKey(IntKey(v))
		return ok && got == v
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := DecodeIntKey(EncodeKey(Str("x"))); ok {
		t.Fatal("string key decoded as int")
	}
	if _, ok := DecodeIntKey(EncodeKey(Int(1), Int(2))); ok {
		t.Fatal("composite key decoded as single int")
	}
}

func TestKeyString(t *testing.T) {
	k := EncodeKey(Int(42), Str("ol"), Null())
	if got := k.String(); got != "42/ol/NULL" {
		t.Fatalf("Key.String() = %q", got)
	}
}
