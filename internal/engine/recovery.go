package engine

import (
	"fmt"
	"sort"

	"cloudybench/internal/storage"
)

// Crash recovery (DESIGN.md §17). A crashed node loses everything volatile —
// delta overlays, secondary indexes, the lock table, in-flight transactions,
// buffer-pool residency — and keeps only the durable prefix of its WAL (plus,
// possibly, a torn tail: the partial or mangled bytes of the record that was
// mid-write when power failed). Recover rebuilds the logical state of the
// committed history from that prefix, ARIES-style:
//
//  1. Torn-tail check: byte-decode the tail; a checksum or truncation error
//     proves it is garbage and it is cut. (The teeth option SkipTornCheck
//     models a broken reader that trusts a structurally-decodable tail.)
//  2. Analysis: one scan classifies every logged txn as committed (commit
//     record present), aborted (abort record present — its writes were
//     rolled back in place before the crash, so redo must skip them; the
//     marker stands in for ARIES's compensation records), or in-flight
//     (neither: a loser to roll back).
//  3. Redo: repeat history for committed and in-flight txns in LSN order.
//  4. Undo: roll back each loser's data records in reverse LSN order using
//     the logged prior images, then append abort markers so a second crash
//     re-classifies the losers as aborted instead of undoing them again
//     (which would clobber later committed writes to the same keys).
//
// State rebuild always replays the full retained log (the testbed never
// truncates it), which is cheap in wall-clock terms; the *virtual* cost of
// recovery is charged by the node layer from RecoveryStats, where the last
// fuzzy checkpoint bounds the redo window — that separation keeps recovery
// time emergent (∝ log-since-checkpoint) without snapshotting engine state
// at every checkpoint.

// RecoveryOpts selects deliberately-broken recovery variants for "teeth"
// tests — proofs that the durability invariants actually catch a recovery
// bug. Production recovery uses the zero value.
type RecoveryOpts struct {
	// SkipUndo leaves losers' effects in place (no rollback, no markers).
	SkipUndo bool
	// SkipTornCheck trusts the torn tail: if it is structurally decodable
	// (checksum ignored), its record is applied as if durable.
	SkipTornCheck bool
}

// RecoveryStats reports what a recovery pass did, and carries the inputs the
// node layer prices into virtual recovery time.
type RecoveryStats struct {
	Records       int         // total durable records scanned by analysis
	CheckpointLSN storage.LSN // last durable checkpoint record (0 = none)
	RedoStart     storage.LSN // redo window start (checkpoint's StartLSN, else 1)
	RedoRecords   int         // data records replayed (full history)
	RedoSince     int         // records in the redo cost window (LSN >= RedoStart)
	UndoRecords   int         // loser data records rolled back
	Losers        int         // distinct in-flight txns rolled back
	Committed     int         // distinct committed txns
	Aborted       int         // distinct runtime-aborted txns (skipped in redo)
	TornDetected  bool        // torn tail present and cut by the checksum scan
	TornApplied   bool        // teeth only: torn tail applied as if durable
	// RedoPages lists the distinct pages touched inside the redo cost
	// window, in first-touch LSN order (deterministic) — the pages a
	// page-oriented architecture faults in during redo.
	RedoPages []storage.PageID
}

// Recover rebuilds this DB from the durable log of a crashed instance. The
// receiver must be freshly constructed with the identical catalog (schema
// setup runs deterministically on every node) and no writes applied. snap is
// the crashed log's post-crash snapshot (durable prefix only); tornTail is
// the mangled trailing bytes Crash returned, if any.
func (db *DB) Recover(snap storage.LogSnapshot, tornTail []byte, opts RecoveryOpts) (RecoveryStats, error) {
	var st RecoveryStats
	db.log.Restore(snap)

	// 1. Torn tail: decode by bytes. Any error proves the tail garbage and
	// it is cut (the log already ends at the durable prefix). A clean
	// decode means the record actually hit the platter in full — keep it.
	if len(tornTail) > 0 {
		dec := storage.DecodeRecord
		if opts.SkipTornCheck {
			dec = storage.DecodeRecordNoVerify
		}
		rec, _, err := dec(tornTail)
		if err != nil {
			st.TornDetected = true
		} else {
			db.log.Append(rec)
			if opts.SkipTornCheck {
				st.TornApplied = true
			}
		}
	}

	recs := db.log.Read(0, 0)
	st.Records = len(recs)

	// 2. Analysis: classify txns, find the last checkpoint, size the redo
	// structures so the hot redo loop never grows them.
	committed := make(map[uint64]bool)
	aborted := make(map[uint64]bool)
	var maxTxn uint64
	for i := range recs {
		r := &recs[i]
		if r.Txn > maxTxn {
			maxTxn = r.Txn
		}
		switch r.Type {
		case storage.RecCommit:
			committed[r.Txn] = true
		case storage.RecAbort:
			aborted[r.Txn] = true
		case storage.RecCheckpoint:
			ck, err := storage.DecodeCheckpointData(r.Image)
			if err != nil {
				return st, fmt.Errorf("engine: recovery: bad checkpoint at LSN %d: %w", r.LSN, err)
			}
			st.CheckpointLSN = r.LSN
			st.RedoStart = ck.StartLSN
		}
	}
	if st.RedoStart == 0 {
		st.RedoStart = 1
	}
	loserCap := 0
	for i := range recs {
		r := &recs[i]
		if isDataRec(r.Type) && !committed[r.Txn] && !aborted[r.Txn] {
			loserCap++
		}
	}

	// 3. Redo: repeat history.
	loserRecs := make([]storage.Record, 0, loserCap)
	pageSeen := make(map[storage.PageID]struct{})
	loserRecs, err := db.redoPass(recs, committed, aborted, loserRecs, pageSeen, &st)
	if err != nil {
		return st, err
	}

	// 4. Undo: roll losers back in reverse LSN order with the logged prior
	// images, restoring the exact overlay shape each write displaced.
	loserIDs := make(map[uint64]bool)
	for i := range loserRecs {
		loserIDs[loserRecs[i].Txn] = true
	}
	st.Losers = len(loserIDs)
	if !opts.SkipUndo {
		for i := len(loserRecs) - 1; i >= 0; i-- {
			r := &loserRecs[i]
			t := db.byID[r.Table]
			if t == nil {
				return st, fmt.Errorf("engine: recovery undo for unknown table id %d", r.Table)
			}
			existed := r.Flags&storage.FlagPriorExisted != 0
			inDelta := r.Flags&storage.FlagPriorInDelta != 0
			var prior Row
			if existed {
				prior, err = db.decodeRow(r.Prior)
				if err != nil {
					return st, fmt.Errorf("engine: recovery undo at LSN %d: %w", r.LSN, err)
				}
			}
			t.undoSet(Key(r.Key), prior, r.Page, existed, inDelta)
			st.UndoRecords++
		}
		// Durable abort markers close the losers out: a later crash must
		// see them as already-rolled-back, or its undo would clobber any
		// newer committed writes to the same keys.
		ids := make([]uint64, 0, len(loserIDs))
		for id := range loserIDs {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			db.log.Append(storage.Record{Type: storage.RecAbort, Txn: id})
		}
	}
	db.log.Sync()

	st.Committed = len(committed)
	st.Aborted = len(aborted)
	db.commits = int64(st.Committed)
	db.aborts = int64(st.Aborted + st.Losers)
	db.BumpTxnFloor(maxTxn)
	clear(db.active)
	return st, nil
}

func isDataRec(t storage.RecType) bool {
	switch t {
	case storage.RecInsert, storage.RecUpdate, storage.RecDelete:
		return true
	}
	return false
}

// redoPass repeats history: every data record of a committed or in-flight
// txn is re-applied in LSN order (runtime-aborted txns are skipped — their
// abort markers certify the rollback already happened in place). In-flight
// txns' records are collected for the undo pass. Records inside the cost
// window (LSN >= RedoStart) are tallied, with first-touch page tracking, so
// the node layer can price redo I/O.
//
// loserRecs and pageSeen arrive pre-sized from analysis, so the loop itself
// performs no slice growth in the common case.
//
//detlint:hotpath
func (db *DB) redoPass(recs []storage.Record, committed, aborted map[uint64]bool, loserRecs []storage.Record, pageSeen map[storage.PageID]struct{}, st *RecoveryStats) ([]storage.Record, error) {
	var cache *Table
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case storage.RecInsert, storage.RecUpdate, storage.RecDelete, storage.RecIndexPut, storage.RecIndexDelete:
		default:
			continue
		}
		if aborted[r.Txn] {
			continue
		}
		if r.LSN >= st.RedoStart {
			st.RedoSince++
			if _, ok := pageSeen[r.Page]; !ok {
				pageSeen[r.Page] = struct{}{}
				st.RedoPages = append(st.RedoPages, r.Page)
			}
		}
		if !isDataRec(r.Type) {
			// Index records carry cost (the page accounting above) but no
			// state: index entries re-derive from the heap replay.
			continue
		}
		if !committed[r.Txn] {
			loserRecs = append(loserRecs, *r)
		}
		st.RedoRecords++
		if err := db.applyRecord(r, &cache); err != nil {
			return loserRecs, err
		}
	}
	return loserRecs, nil
}
