package engine

import (
	"bytes"
	"fmt"
	"sort"

	"cloudybench/internal/storage"
)

// PlanMode selects how a range query chooses its access path.
type PlanMode int

// Plan modes.
const (
	// PlanAuto applies the selectivity rule: index scan when an index
	// exists and the estimated selected fraction is at most
	// IndexScanMaxFraction, full scan otherwise.
	PlanAuto PlanMode = iota
	// PlanForceIndex always uses the index (error if none exists).
	PlanForceIndex
	// PlanForceScan always uses the full table scan — the differential
	// harness's oracle plan.
	PlanForceScan
)

// PlanKind reports which access path served a query.
type PlanKind int

// Plan kinds.
const (
	PlanFullScan PlanKind = iota
	PlanIndexScan
)

func (k PlanKind) String() string {
	if k == PlanIndexScan {
		return "index-scan"
	}
	return "full-scan"
}

// IndexScanMaxFraction is the planner's selectivity cliff: ranges estimated
// to select at most this fraction of the column domain go through the
// index; wider ranges pay the sequential scan (which reads pages in order
// instead of chasing heap pointers).
const IndexScanMaxFraction = 0.25

// ScanResult is the outcome of a range query.
type ScanResult struct {
	// PKs and Rows are the matching primary keys and rows, ordered by
	// (indexed column value, primary key) — identical for both plans, which
	// is the differential harness's oracle property.
	PKs  []Key
	Rows []Row
	// Pages are the distinct physical pages the plan touched, in first-touch
	// order: index pages then heap pages for an index scan, every table page
	// for a full scan. The node layer charges buffer traffic from it.
	Pages []storage.PageID
	Plan  PlanKind
}

// SelectRange returns visible rows whose column col value lies in [lo, hi],
// ordered by (column value, primary key). limit > 0 caps the result (taken
// in order, so both plans truncate identically). The scan is lock-free and
// atomic (no simulation yields): replicas use it directly, transactions
// wrap it with lock acquisition.
func (t *Table) SelectRange(col int, lo, hi Value, limit int, mode PlanMode) (ScanResult, error) {
	if col < 0 || col >= len(t.Schema.Cols) {
		return ScanResult{}, fmt.Errorf("engine: scan column %d out of range for table %s", col, t.Schema.Name)
	}
	ix := t.ixByCol[col]
	useIndex := false
	switch mode {
	case PlanForceIndex:
		if ix == nil {
			return ScanResult{}, fmt.Errorf("engine: no index on %s.%s", t.Schema.Name, t.Schema.Cols[col].Name)
		}
		useIndex = true
	case PlanForceScan:
		useIndex = false
	default:
		useIndex = ix != nil && t.estimateFraction(ix, lo, hi) <= IndexScanMaxFraction
	}
	if useIndex {
		t.ixScans++
		return t.indexScan(ix, lo, hi, limit), nil
	}
	t.fullScans++
	return t.fullScan(col, lo, hi, limit), nil
}

// estimateFraction estimates the fraction of rows a range selects without
// walking it: numeric domains interpolate the range width against the
// index's current [min, max] bounds; string domains and point lookups are
// assumed selective. This is the "simple selectivity rule" — a real
// optimizer would use histograms.
func (t *Table) estimateFraction(ix *Index, lo, hi Value) float64 {
	if bytes.Equal(EncodeKey(lo), EncodeKey(hi)) {
		return 0 // point lookup
	}
	min, max, ok := ix.Bounds()
	if !ok {
		return 0 // empty index: the scan is free either way
	}
	switch {
	case lo.Kind == KindInt && hi.Kind == KindInt && min.Kind == KindInt && max.Kind == KindInt:
		domain := max.I - min.I + 1
		if domain <= 0 {
			return 0
		}
		width := hi.I - lo.I + 1
		if width <= 0 {
			return 0
		}
		return float64(width) / float64(domain)
	case lo.Kind == KindFloat && hi.Kind == KindFloat && min.Kind == KindFloat && max.Kind == KindFloat:
		domain := max.F - min.F
		if domain <= 0 {
			return 0
		}
		width := hi.F - lo.F
		if width <= 0 {
			return 0
		}
		return width / domain
	default:
		return 0
	}
}

func (t *Table) indexScan(ix *Index, lo, hi Value, limit int) ScanResult {
	res := ScanResult{Plan: PlanIndexScan}
	seen := make(map[storage.PageID]struct{})
	touch := func(pg storage.PageID) {
		if _, ok := seen[pg]; !ok {
			seen[pg] = struct{}{}
			res.Pages = append(res.Pages, pg)
		}
	}
	ix.Scan(lo, hi, func(pk Key, ixPage storage.PageID) bool {
		touch(ixPage)
		row, heapPage, ok := t.Get(pk)
		if !ok {
			panic(fmt.Sprintf("engine: index %s entry for missing row %s", ix.Name, pk))
		}
		touch(heapPage)
		res.PKs = append(res.PKs, pk)
		res.Rows = append(res.Rows, row)
		return limit <= 0 || len(res.Rows) < limit
	})
	return res
}

func (t *Table) fullScan(col int, lo, hi Value, limit int) ScanResult {
	res := ScanResult{Plan: PlanFullScan}
	loK, hiK := EncodeKey(lo), EncodeKey(hi)
	type match struct {
		sortKey Key
		pk      Key
		row     Row
	}
	var matches []match
	t.VisibleScan(func(pk Key, r Row) bool {
		vK := EncodeKey(r[col])
		if bytes.Compare(vK, loK) < 0 || bytes.Compare(vK, hiK) > 0 {
			return true
		}
		matches = append(matches, match{sortKey: append(vK, pk...), pk: pk, row: r})
		return true
	})
	sort.Slice(matches, func(i, j int) bool {
		return bytes.Compare(matches[i].sortKey, matches[j].sortKey) < 0
	})
	if limit > 0 && len(matches) > limit {
		matches = matches[:limit]
	}
	for _, m := range matches {
		res.PKs = append(res.PKs, m.pk)
		res.Rows = append(res.Rows, m.row)
	}
	// A sequential scan touches every page of the table.
	for num := uint64(0); num < t.Pages(); num++ {
		res.Pages = append(res.Pages, storage.PageID{Table: t.ID, Num: num})
	}
	return res
}

// ScanStats returns how many range queries each plan has served on this
// table.
func (t *Table) ScanStats() (indexScans, fullScans int64) {
	return t.ixScans, t.fullScans
}
