package engine

import (
	"errors"
	"testing"

	"cloudybench/internal/storage"
)

func testSchema() *Schema {
	return &Schema{
		Name: "orders",
		Cols: []Column{
			{Name: "O_ID", Kind: KindInt},
			{Name: "O_STATUS", Kind: KindString},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 64,
	}
}

func genOrder(id int64) Row { return Row{Int(id), Str("NEW")} }

func newTestTable(t *testing.T, baseRows int64) *Table {
	t.Helper()
	tbl, err := NewTable(1, testSchema(), baseRows, genOrder)
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestSchemaValidate(t *testing.T) {
	bad := []*Schema{
		{},
		{Name: "t"},
		{Name: "t", Cols: []Column{{Name: "a", Kind: KindInt}}},
		{Name: "t", Cols: []Column{{Name: "a", Kind: KindInt}}, KeyCols: []int{5}, AvgRowBytes: 10},
		{Name: "t", Cols: []Column{{Name: "a", Kind: KindInt}}, KeyCols: []int{0}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("schema %d validated", i)
		}
	}
	if err := testSchema().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSchemaColIndexAndKeyOf(t *testing.T) {
	s := testSchema()
	if s.ColIndex("O_STATUS") != 1 || s.ColIndex("missing") != -1 {
		t.Fatal("ColIndex")
	}
	k := s.KeyOf(Row{Int(42), Str("PAID")})
	if id, ok := DecodeIntKey(k); !ok || id != 42 {
		t.Fatalf("KeyOf = %v", k)
	}
}

func TestTableBaseRowsVirtual(t *testing.T) {
	tbl := newTestTable(t, 1000)
	if tbl.LiveRows() != 1000 || tbl.MaxID() != 1000 {
		t.Fatalf("live=%d max=%d", tbl.LiveRows(), tbl.MaxID())
	}
	row, page, ok := tbl.Get(IntKey(500))
	if !ok || row[0].I != 500 {
		t.Fatalf("base get: %v %v", row, ok)
	}
	// 8192/64 = 128 rows/page; id 500 -> page (500-1)/128 = 3.
	if page.Num != 3 {
		t.Fatalf("page = %d, want 3", page.Num)
	}
	if _, _, ok := tbl.Get(IntKey(1001)); ok {
		t.Fatal("row past base exists")
	}
	if _, _, ok := tbl.Get(IntKey(0)); ok {
		t.Fatal("row 0 exists")
	}
	// 1000 rows at 128/page = 8 pages.
	if tbl.Pages() != 8 {
		t.Fatalf("pages = %d, want 8", tbl.Pages())
	}
}

func TestTableInsertAssignsAppendPages(t *testing.T) {
	tbl := newTestTable(t, 100) // 1 base page (128 rows/page)
	id := tbl.NextAutoID()
	if id != 101 {
		t.Fatalf("first auto id = %d, want 101", id)
	}
	page, err := tbl.Insert(IntKey(id), genOrder(id))
	if err != nil {
		t.Fatal(err)
	}
	if page.Num != 1 {
		t.Fatalf("append page = %d, want 1 (after 1 base page)", page.Num)
	}
	if tbl.LiveRows() != 101 || tbl.MaxID() != 101 {
		t.Fatalf("live=%d max=%d", tbl.LiveRows(), tbl.MaxID())
	}
	// 128 more inserts overflow to the next page.
	for i := 0; i < 128; i++ {
		id := tbl.NextAutoID()
		p, err := tbl.Insert(IntKey(id), genOrder(id))
		if err != nil {
			t.Fatal(err)
		}
		if i < 127 && p.Num != 1 {
			t.Fatalf("insert %d landed on page %d", i, p.Num)
		}
		if i == 127 && p.Num != 2 {
			t.Fatalf("overflow insert on page %d, want 2", p.Num)
		}
	}
}

func TestTableInsertDuplicate(t *testing.T) {
	tbl := newTestTable(t, 100)
	if _, err := tbl.Insert(IntKey(50), genOrder(50)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate base insert: %v", err)
	}
	id := tbl.NextAutoID()
	if _, err := tbl.Insert(IntKey(id), genOrder(id)); err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Insert(IntKey(id), genOrder(id)); !errors.Is(err, ErrDuplicateKey) {
		t.Fatalf("duplicate delta insert: %v", err)
	}
}

func TestTableUpdateOverlaysBase(t *testing.T) {
	tbl := newTestTable(t, 100)
	newRow := Row{Int(7), Str("PAID")}
	page, old, err := tbl.Update(IntKey(7), newRow)
	if err != nil {
		t.Fatal(err)
	}
	if old[1].S != "NEW" {
		t.Fatalf("old row = %v", old)
	}
	if page != tbl.PageOfBase(7) {
		t.Fatal("update moved the row off its base page")
	}
	got, _, ok := tbl.Get(IntKey(7))
	if !ok || got[1].S != "PAID" {
		t.Fatalf("updated row = %v", got)
	}
	if tbl.LiveRows() != 100 {
		t.Fatal("update changed live count")
	}
	if _, _, err := tbl.Update(IntKey(9999), newRow); !errors.Is(err, ErrRowNotFound) {
		t.Fatalf("update missing: %v", err)
	}
}

func TestTableDeleteTombstonesBase(t *testing.T) {
	tbl := newTestTable(t, 100)
	_, old, err := tbl.Delete(IntKey(10))
	if err != nil || old[0].I != 10 {
		t.Fatalf("delete: %v %v", old, err)
	}
	if _, _, ok := tbl.Get(IntKey(10)); ok {
		t.Fatal("deleted row visible")
	}
	if tbl.LiveRows() != 99 {
		t.Fatalf("live = %d, want 99", tbl.LiveRows())
	}
	if _, _, err := tbl.Delete(IntKey(10)); !errors.Is(err, ErrRowNotFound) {
		t.Fatalf("double delete: %v", err)
	}
	// Re-insert over tombstone reuses the base page.
	page, err := tbl.Insert(IntKey(10), genOrder(10))
	if err != nil {
		t.Fatal(err)
	}
	if page != tbl.PageOfBase(10) {
		t.Fatal("re-insert did not reuse base page")
	}
	if tbl.LiveRows() != 100 {
		t.Fatalf("live after reinsert = %d", tbl.LiveRows())
	}
}

func TestTableScanMergesBaseAndDelta(t *testing.T) {
	tbl := newTestTable(t, 10)
	tbl.Delete(IntKey(3))
	tbl.Update(IntKey(5), Row{Int(5), Str("PAID")})
	id := tbl.NextAutoID() // 11
	tbl.Insert(IntKey(id), genOrder(id))
	var ids []int64
	var status5 string
	tbl.Scan(1, 20, func(id int64, r Row) bool {
		ids = append(ids, id)
		if id == 5 {
			status5 = r[1].S
		}
		return true
	})
	want := []int64{1, 2, 4, 5, 6, 7, 8, 9, 10, 11}
	if len(ids) != len(want) {
		t.Fatalf("scan ids = %v", ids)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("scan ids = %v, want %v", ids, want)
		}
	}
	if status5 != "PAID" {
		t.Fatal("scan did not see delta update")
	}
	// Early stop.
	count := 0
	tbl.Scan(1, 20, func(id int64, r Row) bool { count++; return count < 3 })
	if count != 3 {
		t.Fatalf("early stop count = %d", count)
	}
}

func TestTableRangeDeltaOnly(t *testing.T) {
	schema := &Schema{
		Name:        "ol",
		Cols:        []Column{{Name: "O_ID", Kind: KindInt}, {Name: "N", Kind: KindInt}},
		KeyCols:     []int{0, 1},
		AvgRowBytes: 32,
	}
	tbl, err := NewTable(2, schema, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for o := int64(1); o <= 3; o++ {
		for n := int64(1); n <= 4; n++ {
			if _, err := tbl.Insert(EncodeKey(Int(o), Int(n)), Row{Int(o), Int(n)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tbl.Delete(EncodeKey(Int(2), Int(2)))
	var got []int64
	tbl.Range(EncodeKey(Int(2)), EncodeKey(Int(3)), func(k Key, r Row) bool {
		got = append(got, r[1].I)
		return true
	})
	if len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 4 {
		t.Fatalf("range = %v, want [1 3 4]", got)
	}
}

func TestTableApplyAtKeepsPageIdentity(t *testing.T) {
	tbl := newTestTable(t, 100)
	page := storage.PageID{Table: 1, Num: 77}
	tbl.InsertAt(IntKey(200), genOrder(200), page)
	got, gotPage, ok := tbl.Get(IntKey(200))
	if !ok || got[0].I != 200 || gotPage != page {
		t.Fatalf("InsertAt: %v %v %v", got, gotPage, ok)
	}
	if tbl.MaxID() != 200 {
		t.Fatalf("MaxID after replay = %d", tbl.MaxID())
	}
	// Idempotent replay.
	tbl.InsertAt(IntKey(200), genOrder(200), page)
	if tbl.LiveRows() != 101 {
		t.Fatalf("live after idempotent replay = %d", tbl.LiveRows())
	}
	tbl.UpdateAt(IntKey(200), Row{Int(200), Str("PAID")}, page)
	got, _, _ = tbl.Get(IntKey(200))
	if got[1].S != "PAID" {
		t.Fatal("UpdateAt")
	}
	tbl.DeleteAt(IntKey(200), page)
	if _, _, ok := tbl.Get(IntKey(200)); ok {
		t.Fatal("DeleteAt left row visible")
	}
	if tbl.LiveRows() != 100 {
		t.Fatalf("live after DeleteAt = %d", tbl.LiveRows())
	}
	// Idempotent delete replay.
	tbl.DeleteAt(IntKey(200), page)
	if tbl.LiveRows() != 100 {
		t.Fatal("double DeleteAt changed live count")
	}
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(1, testSchema(), 10, nil); err == nil {
		t.Fatal("base rows without generator accepted")
	}
	if _, err := NewTable(1, &Schema{}, 0, nil); err == nil {
		t.Fatal("invalid schema accepted")
	}
}
