package engine

import "time"

// Observer receives the database's transaction history as it happens:
// every read and write (with before/after images) plus commit and abort
// outcomes, each stamped with the virtual time of the event. The invariant
// checker (internal/check) implements it to record histories; the engine
// defines the interface so it does not depend on the checker.
//
// Callbacks run inline on the transaction's process under the simulation's
// single-runnable discipline, so their relative order is deterministic and
// implementations need no locking. A nil-row before-image means the key did
// not exist; a nil after-image means the write was a delete.
//
// The same pattern extends to resource waits: LockTable.OnWait reports
// lock-wait intervals to whoever attached it (the node layer adapts it to
// the observability tracer), keeping the engine free of any dependency on
// the obs package.
type Observer interface {
	OnRead(at time.Duration, txn uint64, table string, key Key, row Row)
	OnWrite(at time.Duration, txn uint64, table string, key Key, before, after Row)
	OnCommit(at time.Duration, txn uint64)
	OnAbort(at time.Duration, txn uint64)
}

// SetObserver attaches (or, with nil, detaches) a history observer.
func (db *DB) SetObserver(o Observer) { db.observer = o }

// Observer returns the attached history observer (nil if detached), so node
// recovery can carry it onto the rebuilt DB instance.
func (db *DB) Observer() Observer { return db.observer }
