package engine

import (
	"errors"
	"testing"
	"time"

	"cloudybench/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func TestLockSharedCompatible(t *testing.T) {
	s := sim.New(epoch)
	lt := NewLockTable(s)
	concurrent := 0
	max := 0
	for i := 0; i < 3; i++ {
		i := i
		s.Go("reader", func(p *sim.Proc) {
			if err := lt.Acquire(p, uint64(i+1), "k", LockShared); err != nil {
				t.Error(err)
				return
			}
			concurrent++
			if concurrent > max {
				max = concurrent
			}
			p.Sleep(time.Second)
			concurrent--
			lt.Release(uint64(i+1), "k")
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if max != 3 {
		t.Fatalf("max concurrent S holders = %d, want 3", max)
	}
	if lt.HeldLocks() != 0 {
		t.Fatal("locks leaked")
	}
}

func TestLockExclusiveBlocksAndFIFO(t *testing.T) {
	s := sim.New(epoch)
	lt := NewLockTable(s)
	var order []uint64
	for i := 0; i < 3; i++ {
		txn := uint64(i + 1)
		s.Go("writer", func(p *sim.Proc) {
			p.Sleep(time.Duration(txn) * time.Millisecond)
			if err := lt.Acquire(p, txn, "k", LockExclusive); err != nil {
				t.Error(err)
				return
			}
			order = append(order, txn)
			p.Sleep(100 * time.Millisecond)
			lt.Release(txn, "k")
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("grant order = %v, want FIFO", order)
	}
	waits, timeouts := lt.Stats()
	if waits != 2 || timeouts != 0 {
		t.Fatalf("waits/timeouts = %d/%d, want 2/0", waits, timeouts)
	}
}

func TestLockSharedQueueBehindExclusiveWaiter(t *testing.T) {
	// S1 holds; X2 waits; S3 must queue behind X2 (no starvation of writers).
	s := sim.New(epoch)
	lt := NewLockTable(s)
	var events []string
	s.Go("s1", func(p *sim.Proc) {
		_ = lt.Acquire(p, 1, "k", LockShared)
		p.Sleep(10 * time.Millisecond)
		lt.Release(1, "k")
	})
	s.Go("x2", func(p *sim.Proc) {
		p.Sleep(time.Millisecond)
		_ = lt.Acquire(p, 2, "k", LockExclusive)
		events = append(events, "x2")
		p.Sleep(10 * time.Millisecond)
		lt.Release(2, "k")
	})
	s.Go("s3", func(p *sim.Proc) {
		p.Sleep(2 * time.Millisecond)
		_ = lt.Acquire(p, 3, "k", LockShared)
		events = append(events, "s3")
		lt.Release(3, "k")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "x2" || events[1] != "s3" {
		t.Fatalf("events = %v, want x2 before s3", events)
	}
}

func TestLockReacquireIsNoop(t *testing.T) {
	s := sim.New(epoch)
	lt := NewLockTable(s)
	s.Go("p", func(p *sim.Proc) {
		if err := lt.Acquire(p, 1, "k", LockExclusive); err != nil {
			t.Error(err)
		}
		if err := lt.Acquire(p, 1, "k", LockExclusive); err != nil {
			t.Error(err)
		}
		// X holder asking for S is also satisfied.
		if err := lt.Acquire(p, 1, "k", LockShared); err != nil {
			t.Error(err)
		}
		lt.Release(1, "k")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestLockUpgrade(t *testing.T) {
	s := sim.New(epoch)
	lt := NewLockTable(s)
	var upgraded time.Duration
	s.Go("upgrader", func(p *sim.Proc) {
		_ = lt.Acquire(p, 1, "k", LockShared)
		p.Sleep(time.Millisecond)
		if err := lt.Acquire(p, 1, "k", LockExclusive); err != nil {
			t.Error(err)
			return
		}
		upgraded = p.Elapsed()
		lt.Release(1, "k")
	})
	s.Go("other-reader", func(p *sim.Proc) {
		_ = lt.Acquire(p, 2, "k", LockShared)
		p.Sleep(10 * time.Millisecond)
		lt.Release(2, "k")
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	// Upgrade must wait for the other S holder to release at 10ms.
	if upgraded != 10*time.Millisecond {
		t.Fatalf("upgrade granted at %v, want 10ms", upgraded)
	}
}

func TestLockTimeoutOnDeadlock(t *testing.T) {
	s := sim.New(epoch)
	lt := NewLockTable(s)
	lt.SetTimeout(50 * time.Millisecond)
	timeouts := 0
	done := 0
	// Classic AB-BA deadlock; the timeout must break it.
	run := func(txn uint64, first, second string) {
		s.Go("t", func(p *sim.Proc) {
			if err := lt.Acquire(p, txn, first, LockExclusive); err != nil {
				t.Error(err)
				return
			}
			p.Sleep(time.Millisecond)
			if err := lt.Acquire(p, txn, second, LockExclusive); err != nil {
				if !errors.Is(err, ErrLockTimeout) {
					t.Errorf("unexpected error %v", err)
				}
				timeouts++
				lt.Release(txn, first)
				return
			}
			done++
			lt.Release(txn, second)
			lt.Release(txn, first)
		})
	}
	run(1, "a", "b")
	run(2, "b", "a")
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if timeouts == 0 {
		t.Fatal("deadlock did not produce a timeout")
	}
	if timeouts+done != 2 {
		t.Fatalf("timeouts=%d done=%d", timeouts, done)
	}
	if lt.HeldLocks() != 0 {
		t.Fatal("locks leaked after deadlock recovery")
	}
}

func TestLockReleaseUnknownKeyHarmless(t *testing.T) {
	s := sim.New(epoch)
	lt := NewLockTable(s)
	lt.Release(1, "never-held")
	lt.ReleaseAll(1, []string{"a", "b"})
	if lt.HeldLocks() != 0 {
		t.Fatal("phantom locks")
	}
}
