package difftest

import (
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/evaluator"
	"cloudybench/internal/sim"
)

// runOne executes one suite with the dual-plan hook installed and fails the
// test on any divergence, failed invariant, or a run that never exercised
// the comparator.
func runOne(t *testing.T, suite string, kind cdb.Kind, cfg evaluator.SuiteConfig) {
	t.Helper()
	d := &Differ{}
	cfg.Suite = suite
	cfg.Kind = kind
	cfg.ScanOverride = d.Scan
	res := evaluator.RunSuite(cfg)
	if !res.Passed() {
		t.Fatalf("%s on %s: invariants failed: %v", suite, kind, res.Verdicts)
	}
	if res.Commits == 0 {
		t.Fatalf("%s on %s: no commits", suite, kind)
	}
	if d.Compared == 0 {
		t.Fatalf("%s on %s: the differ never ran — suite issued no planner scans", suite, kind)
	}
	if !d.Clean() {
		t.Fatalf("%s on %s: index plan diverged from the full-scan oracle after %d clean scans:\n%v",
			suite, kind, d.Compared, d.Diffs)
	}
}

// TestDifferentialAllSuitesAllSUTs is the core differential guarantee:
// every registered suite, on every SUT profile, returns byte-identical
// results through the index and through the full-scan oracle.
func TestDifferentialAllSuitesAllSUTs(t *testing.T) {
	for _, kind := range cdb.Kinds {
		for _, suite := range core.SuiteNames() {
			runOne(t, suite, kind, evaluator.SuiteConfig{
				Span: 3 * time.Second, Concurrency: 4,
			})
		}
	}
}

// TestDifferentialUnderChaos re-proves the oracle property while the
// standard fault schedule (crashes, stalls, burst load) is live.
func TestDifferentialUnderChaos(t *testing.T) {
	for _, suite := range core.SuiteNames() {
		runOne(t, suite, cdb.CDB2, evaluator.SuiteConfig{
			Span: 8 * time.Second, Concurrency: 4, Chaos: true,
		})
	}
}

// TestDifferentialUnderFailover re-proves the oracle property across a gray
// partition and lease-fenced fail-over: scans served by replicas and by the
// promoted primary must still match their own full-scan oracle.
func TestDifferentialUnderFailover(t *testing.T) {
	for _, suite := range core.SuiteNames() {
		runOne(t, suite, cdb.CDB4, evaluator.SuiteConfig{
			Span: 12 * time.Second, Concurrency: 4, Partition: true,
		})
	}
}

// TestDifferDetectsCorruption is the harness's teeth: a fabricated index
// entry (wrong column value for a live row) must surface as a divergence,
// proving a real maintenance bug could not slip past the comparator.
func TestDifferDetectsCorruption(t *testing.T) {
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := engine.NewDB(s)
	tbl := db.MustCreateTable(&engine.Schema{
		Name: "items",
		Cols: []engine.Column{
			{Name: "IT_ID", Kind: engine.KindInt},
			{Name: "IT_GROUP", Kind: engine.KindInt},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 32,
	}, 20, func(id int64) engine.Row {
		return engine.Row{engine.Int(id), engine.Int(id % 4)}
	})
	ix := db.MustCreateIndex("items", "ix_items_group", "IT_GROUP")

	d := &Differ{}
	if _, err := d.Compare(tbl, 1, engine.Int(2), engine.Int(2), 0); err != nil {
		t.Fatal(err)
	}
	if d.Compared != 1 || !d.Clean() {
		t.Fatalf("clean index reported diffs: %v", d.Diffs)
	}

	// Row 1 has IT_GROUP=1; claim the index also files it under group 2.
	ix.CorruptEntryForTest(ix.EntryKey(engine.Int(2), engine.IntKey(1)), engine.IntKey(1))
	if _, err := d.Compare(tbl, 1, engine.Int(2), engine.Int(2), 0); err != nil {
		t.Fatal(err)
	}
	if d.Clean() {
		t.Fatal("differ missed a fabricated index entry")
	}
}
