// Package difftest is the differential harness for secondary indexes: it
// intercepts every read-only scan a workload suite issues and executes it
// twice — once through the index (PlanForceIndex) and once through the
// full-scan oracle (PlanForceScan) — asserting byte-identical results.
//
// The two plans run back to back inside the interception, with no
// simulation yields between them, so the table state cannot change in the
// middle: any divergence is an index-maintenance bug, not a race. Because
// the hook rides core.Config.ScanOverride, the harness composes with every
// registered suite, every SUT profile, and the chaos and partition
// gauntlets without those layers knowing it is there.
package difftest

import (
	"bytes"
	"fmt"

	"cloudybench/internal/engine"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
)

// Differ is the dual-plan comparator. Install Scan as a suite run's
// ScanOverride; after the run, Compared counts the scans checked and
// Diffs holds the first divergences found (empty means the index plan was
// indistinguishable from the oracle on every scan).
type Differ struct {
	Compared int64
	Diffs    []string
}

const maxDiffs = 5

func (d *Differ) record(format string, args ...any) {
	if len(d.Diffs) < maxDiffs {
		d.Diffs = append(d.Diffs, fmt.Sprintf(format, args...))
	}
}

// Scan is a core.ScanFunc: it runs the scan under both plans on the routed
// node, byte-compares primary keys and rows, then charges the node the
// normal scan cost and returns the index plan's rows — the suite paces and
// behaves as if the planner ran alone.
func (d *Differ) Scan(p *sim.Proc, n *node.Node, table string, col int, lo, hi engine.Value, limit int) ([]engine.Row, error) {
	if err := n.AwaitRunning(p); err != nil {
		return nil, err
	}
	tbl := n.DB.Table(table)
	if tbl == nil {
		return nil, fmt.Errorf("difftest: no table %q on node %s", table, n.Name)
	}
	res, err := d.compare(tbl, col, lo, hi, limit)
	if err != nil {
		return nil, err
	}
	n.ScanCharge(p, res.Pages)
	return res.Rows, nil
}

// Compare executes one range query under both plans on a table and records
// any divergence. Exposed so the harness's own failure-detection tests can
// drive it against a deliberately corrupted index without a deployment.
func (d *Differ) Compare(tbl *engine.Table, col int, lo, hi engine.Value, limit int) ([]engine.Row, error) {
	res, err := d.compare(tbl, col, lo, hi, limit)
	return res.Rows, err
}

func (d *Differ) compare(tbl *engine.Table, col int, lo, hi engine.Value, limit int) (engine.ScanResult, error) {
	table := tbl.Schema.Name
	ixRes, ixErr := tbl.SelectRange(col, lo, hi, limit, engine.PlanForceIndex)
	scRes, scErr := tbl.SelectRange(col, lo, hi, limit, engine.PlanForceScan)
	d.Compared++
	if (ixErr == nil) != (scErr == nil) {
		d.record("%s.%s [%v,%v]: plans disagree on error: index=%v scan=%v",
			table, tbl.Schema.Cols[col].Name, lo, hi, ixErr, scErr)
		return ixRes, ixErr
	}
	if ixErr != nil {
		return ixRes, ixErr
	}
	if len(ixRes.PKs) != len(scRes.PKs) {
		d.record("%s.%s [%v,%v] limit %d: index returned %d rows, oracle %d",
			table, tbl.Schema.Cols[col].Name, lo, hi, limit, len(ixRes.PKs), len(scRes.PKs))
		return ixRes, nil
	}
	for i := range ixRes.PKs {
		if !bytes.Equal(ixRes.PKs[i], scRes.PKs[i]) {
			d.record("%s.%s [%v,%v]: pk %d differs: index %x, oracle %x",
				table, tbl.Schema.Cols[col].Name, lo, hi, i, ixRes.PKs[i], scRes.PKs[i])
			return ixRes, nil
		}
		iv := engine.EncodeRow(nil, ixRes.Rows[i])
		sv := engine.EncodeRow(nil, scRes.Rows[i])
		if !bytes.Equal(iv, sv) {
			d.record("%s.%s [%v,%v]: row for pk %x differs between plans",
				table, tbl.Schema.Cols[col].Name, lo, hi, ixRes.PKs[i])
			return ixRes, nil
		}
	}
	return ixRes, nil
}

// Clean reports whether every compared scan matched the oracle.
func (d *Differ) Clean() bool { return len(d.Diffs) == 0 }
