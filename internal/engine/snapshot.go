package engine

import (
	"fmt"
	"sort"

	"cloudybench/internal/storage"
)

// DB snapshots capture the logical state a warm-up run leaves behind so sweep
// cells sharing a (SUT, scale, schema, seed) prefix can fork from it instead
// of re-running the warm-up (DESIGN.md §15). A snapshot must be taken at a
// quiescent point — no transactions in flight, no locks held — which the
// evaluator guarantees by draining clients and replication streams first.
//
// What a snapshot carries: per-table delta overlays (rows and tombstones, in
// key order), table counters, secondary-index entries, the WAL, and the DB's
// txn/commit/abort counters. What it deliberately omits: the lock table
// (empty at quiescence), and all fast-path scratch (txn free-list, arena
// slabs, interner) — a restored DB rebuilds those lazily, which changes no
// observable behaviour because scratch never escapes the engine.
//
// Rows and key bytes in the snapshot alias the source DB's memory. That is
// safe because both are immutable once written: restore builds fresh B-trees
// (which copy keys on insert) but shares row objects, so any number of cells
// may fork from one snapshot and evolve independently.

type deltaSnap struct {
	key  Key
	row  Row // nil marks a tombstone
	page storage.PageID
}

type indexEntrySnap struct {
	entryKey Key
	pk       Key
	page     storage.PageID
}

type tableSnap struct {
	name      string
	delta     []deltaSnap
	nextAuto  int64
	appendSeq int64
	liveRows  int64
	ixScans   int64
	fullScans int64
	// indexes holds per-index entry lists in the table's index creation
	// order (deterministic: schema setup runs identically on every node).
	indexes [][]indexEntrySnap
}

// DBSnapshot is a point-in-time capture of a DB's logical state.
type DBSnapshot struct {
	tables      []tableSnap // sorted by table name
	log         storage.LogSnapshot
	nextTxn     uint64
	nextTableID storage.TableID
	commits     int64
	aborts      int64
}

// Snapshot captures the DB's current logical state. The DB must be quiescent
// (no transactions in flight).
func (db *DB) Snapshot() DBSnapshot {
	names := make([]string, 0, len(db.byName))
	for name := range db.byName {
		names = append(names, name)
	}
	sort.Strings(names)
	snap := DBSnapshot{
		tables:      make([]tableSnap, 0, len(names)),
		log:         db.log.Snapshot(),
		nextTxn:     db.nextTxn,
		nextTableID: db.nextTableID,
		commits:     db.commits,
		aborts:      db.aborts,
	}
	for _, name := range names {
		t := db.byName[name]
		ts := tableSnap{
			name:      name,
			delta:     make([]deltaSnap, 0, t.delta.Len()),
			nextAuto:  t.nextAuto,
			appendSeq: t.appendSeq,
			liveRows:  t.liveRows,
			ixScans:   t.ixScans,
			fullScans: t.fullScans,
		}
		t.delta.AscendRange(nil, nil, func(k Key, dv deltaVal) bool {
			ts.delta = append(ts.delta, deltaSnap{key: k, row: dv.row, page: dv.page})
			return true
		})
		for _, ix := range t.indexes {
			entries := make([]indexEntrySnap, 0, ix.tree.Len())
			ix.tree.AscendRange(nil, nil, func(ek Key, e indexEntry) bool {
				entries = append(entries, indexEntrySnap{entryKey: ek, pk: e.pk, page: e.page})
				return true
			})
			ts.indexes = append(ts.indexes, entries)
		}
		snap.tables = append(snap.tables, ts)
	}
	return snap
}

// Restore resets the DB's logical state to a snapshot. The DB must carry the
// same catalog (tables and indexes, created in the same order) as the
// snapshot's source — the evaluator deploys a fresh cluster with the identical
// schema setup, then restores into it. Restore builds fresh B-trees, so DBs
// restored from one snapshot evolve independently.
func (db *DB) Restore(snap DBSnapshot) error {
	if len(db.byName) != len(snap.tables) {
		return fmt.Errorf("engine: restore: catalog mismatch: %d tables, snapshot has %d", len(db.byName), len(snap.tables))
	}
	for i := range snap.tables {
		ts := &snap.tables[i]
		t := db.byName[ts.name]
		if t == nil {
			return fmt.Errorf("engine: restore: unknown table %q", ts.name)
		}
		if len(t.indexes) != len(ts.indexes) {
			return fmt.Errorf("engine: restore: table %q has %d indexes, snapshot has %d", ts.name, len(t.indexes), len(ts.indexes))
		}
		t.delta = NewBTree[deltaVal]()
		for j := range ts.delta {
			d := &ts.delta[j]
			t.delta.Set(d.key, deltaVal{row: d.row, page: d.page})
		}
		t.nextAuto = ts.nextAuto
		t.appendSeq = ts.appendSeq
		t.liveRows = ts.liveRows
		t.ixScans = ts.ixScans
		t.fullScans = ts.fullScans
		t.ixOps = t.ixOps[:0]
		for j, ix := range t.indexes {
			ix.tree = NewBTree[indexEntry]()
			for _, e := range ts.indexes[j] {
				ix.tree.Set(e.entryKey, indexEntry{pk: e.pk, page: e.page})
			}
		}
	}
	db.log.Restore(snap.log)
	db.nextTxn = snap.nextTxn
	db.nextTableID = snap.nextTableID
	db.commits = snap.commits
	db.aborts = snap.aborts
	// Snapshots are taken at quiescence, so the active-transaction table is
	// empty by construction; clear any leftover entries in the target.
	clear(db.active)
	return nil
}
