package engine

import (
	"bytes"
	"testing"
	"time"

	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

func indexedSchema() *Schema {
	return &Schema{
		Name: "items",
		Cols: []Column{
			{Name: "IT_ID", Kind: KindInt},
			{Name: "IT_GROUP", Kind: KindInt},
			{Name: "IT_PRICE", Kind: KindFloat},
			{Name: "IT_TAG", Kind: KindString},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 64,
	}
}

func genItem(id int64) Row {
	return Row{Int(id), Int(id % 10), Float(float64(id) / 2), Str("base")}
}

func newIndexedDB(t *testing.T, baseRows int64) (*sim.Sim, *DB, *Table, *Index) {
	t.Helper()
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := NewDB(s)
	tbl := db.MustCreateTable(indexedSchema(), baseRows, genItem)
	ix := db.MustCreateIndex("items", "ix_items_group", "IT_GROUP")
	return s, db, tbl, ix
}

// indexIsProjection checks every index of the table against the visible
// rows, both directions, byte for byte.
func indexIsProjection(t *testing.T, tbl *Table) {
	t.Helper()
	for _, ix := range tbl.Indexes() {
		var want []Key
		tbl.VisibleScan(func(pk Key, r Row) bool {
			want = append(want, ix.EntryKey(r[ix.Col], pk))
			return true
		})
		sortKeys(want)
		var got []Key
		ix.Walk(func(ek Key, pk Key) bool {
			got = append(got, append(Key(nil), ek...))
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("index %s has %d entries, table projects %d", ix.Name, len(got), len(want))
		}
		for i := range got {
			if !bytes.Equal(got[i], want[i]) {
				t.Fatalf("index %s entry %d: got %x want %x", ix.Name, i, got[i], want[i])
			}
		}
	}
}

func sortKeys(ks []Key) {
	for i := 1; i < len(ks); i++ {
		for j := i; j > 0 && bytes.Compare(ks[j], ks[j-1]) < 0; j-- {
			ks[j], ks[j-1] = ks[j-1], ks[j]
		}
	}
}

func TestCreateIndexMaterializesBaseRows(t *testing.T) {
	_, _, tbl, ix := newIndexedDB(t, 40)
	if ix.Len() != 40 {
		t.Fatalf("index has %d entries, want 40", ix.Len())
	}
	indexIsProjection(t, tbl)
	// Group 3 holds ids 3, 13, 23, 33.
	var pks []int64
	ix.Scan(Int(3), Int(3), func(pk Key, _ storage.PageID) bool {
		id, _ := DecodeIntKey(pk)
		pks = append(pks, id)
		return true
	})
	want := []int64{3, 13, 23, 33}
	if len(pks) != len(want) {
		t.Fatalf("group 3 pks = %v, want %v", pks, want)
	}
	for i := range want {
		if pks[i] != want[i] {
			t.Fatalf("group 3 pks = %v, want %v", pks, want)
		}
	}
}

func TestIndexMaintainedAcrossMutationsAndRollback(t *testing.T) {
	s, db, tbl, _ := newIndexedDB(t, 20)
	s.Go("driver", func(p *sim.Proc) {
		// Committed insert, update (group change), delete.
		txn := db.Begin(p)
		txn.Insert(tbl, Row{Int(100), Int(77), Float(1), Str("new")})
		txn.Update(tbl, IntKey(5), Row{Int(5), Int(77), Float(2), Str("moved")})
		txn.Delete(tbl, IntKey(6))
		txn.Commit()

		// Aborted work across every mutation kind must leave no trace.
		txn = db.Begin(p)
		txn.Insert(tbl, Row{Int(200), Int(88), Float(1), Str("ghost")})
		txn.Update(tbl, IntKey(100), Row{Int(100), Int(99), Float(1), Str("ghost")})
		txn.Delete(tbl, IntKey(5))
		txn.Update(tbl, IntKey(7), Row{Int(7), Int(7 % 10), Float(9), Str("same-group")})
		txn.Abort()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	indexIsProjection(t, tbl)
	ix := tbl.IndexOn(1)
	var group77 []int64
	ix.Scan(Int(77), Int(77), func(pk Key, _ storage.PageID) bool {
		id, _ := DecodeIntKey(pk)
		group77 = append(group77, id)
		return true
	})
	if len(group77) != 2 || group77[0] != 5 || group77[1] != 100 {
		t.Fatalf("group 77 = %v, want [5 100]", group77)
	}
	if n := ix.Len(); n != 20 { // 20 base - 1 delete + 1 insert
		t.Fatalf("index has %d entries, want 20", n)
	}
}

func TestIndexWALRecordsEmittedAndReplicaDerives(t *testing.T) {
	s, db, tbl, _ := newIndexedDB(t, 10)

	// Replica with identical schema + index creation order.
	replica := NewDB(s)
	rtbl := replica.MustCreateTable(indexedSchema(), 10, genItem)
	replica.MustCreateIndex("items", "ix_items_group", "IT_GROUP")

	s.Go("driver", func(p *sim.Proc) {
		txn := db.Begin(p)
		txn.Insert(tbl, Row{Int(50), Int(4), Float(1), Str("x")})
		txn.Update(tbl, IntKey(2), Row{Int(2), Int(9), Float(1), Str("y")})
		txn.Delete(tbl, IntKey(3))
		txn.Commit()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}

	var puts, dels int
	for _, rec := range db.Log().Read(0, 0) {
		switch rec.Type {
		case 8: // storage.RecIndexPut
			puts++
		case 9: // storage.RecIndexDelete
			dels++
		}
		if err := replica.Apply(rec); err != nil {
			t.Fatal(err)
		}
	}
	// insert: 1 put; update (group 2->9): 1 del + 1 put; delete: 1 del.
	if puts != 2 || dels != 2 {
		t.Fatalf("index WAL records: %d puts %d dels, want 2/2", puts, dels)
	}
	indexIsProjection(t, rtbl)
	rix := rtbl.IndexOn(1)
	if rix.Len() != tbl.IndexOn(1).Len() {
		t.Fatalf("replica index %d entries, primary %d", rix.Len(), tbl.IndexOn(1).Len())
	}
}

func TestIndexRejectsDuplicatesAndBadColumns(t *testing.T) {
	_, db, _, _ := newIndexedDB(t, 5)
	if _, err := db.CreateIndex("items", "ix_items_group", "IT_PRICE"); err == nil {
		t.Fatal("duplicate index name accepted")
	}
	if _, err := db.CreateIndex("items", "ix2", "IT_GROUP"); err == nil {
		t.Fatal("second index on same column accepted")
	}
	if _, err := db.CreateIndex("items", "ix3", "NOPE"); err == nil {
		t.Fatal("index on unknown column accepted")
	}
	if _, err := db.CreateIndex("nope", "ix4", "IT_GROUP"); err == nil {
		t.Fatal("index on unknown table accepted")
	}
	if _, err := db.CreateIndex("items", "ix5", "IT_PRICE"); err != nil {
		t.Fatalf("float index rejected: %v", err)
	}
}

func TestFloatKeyOrdering(t *testing.T) {
	vals := []float64{-1e300, -2.5, -0.0, 0.0, 1e-9, 1, 2.5, 1e300}
	for i := 1; i < len(vals); i++ {
		a, b := EncodeKey(Float(vals[i-1])), EncodeKey(Float(vals[i]))
		if bytes.Compare(a, b) > 0 {
			t.Fatalf("float key order broken: %v > %v", vals[i-1], vals[i])
		}
	}
	for _, f := range vals {
		v, n, ok := DecodeKeyValue(EncodeKey(Float(f)))
		if !ok || n != 9 || v.F != f {
			t.Fatalf("float key round trip failed for %v: got %v", f, v)
		}
	}
}
