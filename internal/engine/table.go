package engine

import (
	"bytes"
	"errors"
	"fmt"

	"cloudybench/internal/storage"
)

// Column is one schema column.
type Column struct {
	Name string
	Kind Kind
}

// Schema describes a table: columns, primary-key columns, and the average
// physical row size used for page math.
type Schema struct {
	Name        string
	Cols        []Column
	KeyCols     []int // indexes into Cols forming the primary key
	AvgRowBytes int
}

// ColIndex returns the index of the named column, or -1.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.Cols {
		if c.Name == name {
			return i
		}
	}
	return -1
}

// KeyOf builds the primary key of a row under this schema.
func (s *Schema) KeyOf(r Row) Key {
	vals := make([]Value, len(s.KeyCols))
	for i, ci := range s.KeyCols {
		vals[i] = r[ci]
	}
	return EncodeKey(vals...)
}

// Validate checks structural sanity of the schema.
func (s *Schema) Validate() error {
	if s.Name == "" {
		return errors.New("engine: schema without name")
	}
	if len(s.Cols) == 0 {
		return fmt.Errorf("engine: table %s has no columns", s.Name)
	}
	if len(s.KeyCols) == 0 {
		return fmt.Errorf("engine: table %s has no primary key", s.Name)
	}
	for _, ci := range s.KeyCols {
		if ci < 0 || ci >= len(s.Cols) {
			return fmt.Errorf("engine: table %s key column %d out of range", s.Name, ci)
		}
	}
	if s.AvgRowBytes <= 0 {
		return fmt.Errorf("engine: table %s has no row size estimate", s.Name)
	}
	return nil
}

// RowGen deterministically materializes the base row with the given dense
// primary key id in [1, baseRows]. The returned row must have that id as
// its primary key.
type RowGen func(id int64) Row

type deltaVal struct {
	row  Row // nil marks a tombstone
	page storage.PageID
}

// Table is a primary-key table: a deterministic generator provides the
// initial load (ids 1..baseRows, laid out densely on pages) and a B-tree
// delta overlay holds every written row. All reads check the delta first.
// The table also answers "which page does this row live on?", which the
// node layer uses to charge buffer and I/O costs.
type Table struct {
	ID     storage.TableID
	Schema *Schema

	baseRows    int64
	gen         RowGen
	rowsPerPage int64
	basePages   uint64

	delta     *BTree[deltaVal]
	nextAuto  int64 // next auto-increment id to hand out
	appendSeq int64 // physical slots assigned to post-load inserts
	liveRows  int64

	// indexes holds secondary indexes in creation order (deterministic:
	// schema setup runs identically on every node). ixOps is the per-write
	// scratch list of physical index-entry changes, reset at the start of
	// each mutation — writing transactions read it to emit index WAL
	// records; rollback and replica replay let the next write overwrite it.
	indexes []*Index
	ixByCol map[int]*Index
	ixOps   []IndexOp

	// scan counters: how many range queries each plan served (reports).
	ixScans, fullScans int64
}

// NewTable creates a table. baseRows may be zero (fully delta-backed, as in
// TPC-C); if positive, gen must be non-nil and rows 1..baseRows exist
// virtually with PK = Int(id).
func NewTable(id storage.TableID, schema *Schema, baseRows int64, gen RowGen) (*Table, error) {
	if err := schema.Validate(); err != nil {
		return nil, err
	}
	if baseRows > 0 && gen == nil {
		return nil, fmt.Errorf("engine: table %s has base rows but no generator", schema.Name)
	}
	t := &Table{
		ID:          id,
		Schema:      schema,
		baseRows:    baseRows,
		gen:         gen,
		rowsPerPage: storage.RowsPerPage(schema.AvgRowBytes),
		basePages:   storage.PagesFor(baseRows, schema.AvgRowBytes),
		delta:       NewBTree[deltaVal](),
		nextAuto:    baseRows + 1,
		liveRows:    baseRows,
	}
	return t, nil
}

// BaseRows returns the generator-backed row count.
func (t *Table) BaseRows() int64 { return t.baseRows }

// LiveRows returns the current number of visible rows.
func (t *Table) LiveRows() int64 { return t.liveRows }

// MaxID returns the largest primary-key id ever assigned (base or auto),
// which access distributions use as the key-space bound.
func (t *Table) MaxID() int64 { return t.nextAuto - 1 }

// NextAutoID hands out the next dense auto-increment id (INSERT ... DEFAULT).
func (t *Table) NextAutoID() int64 {
	id := t.nextAuto
	t.nextAuto++
	return id
}

// BumpAutoID raises the auto-increment floor to at least id+1 (used by
// replicas applying shipped inserts and by explicit-key inserts).
func (t *Table) BumpAutoID(id int64) {
	if id >= t.nextAuto {
		t.nextAuto = id + 1
	}
}

// Pages returns the current physical page count (base + appended).
func (t *Table) Pages() uint64 {
	appended := storage.PagesFor(t.appendSeq, t.Schema.AvgRowBytes)
	return t.basePages + appended
}

// PageOfBase returns the page holding generator row id.
func (t *Table) PageOfBase(id int64) storage.PageID {
	return storage.PageID{Table: t.ID, Num: uint64((id - 1) / t.rowsPerPage)}
}

func (t *Table) nextAppendPage() storage.PageID {
	page := storage.PageID{Table: t.ID, Num: t.basePages + uint64(t.appendSeq/t.rowsPerPage)}
	t.appendSeq++
	return page
}

func (t *Table) isBaseKey(k Key) (int64, bool) {
	id, ok := DecodeIntKey(k)
	if !ok || id < 1 || id > t.baseRows {
		return 0, false
	}
	return id, true
}

// Get returns the visible row under k and the page it resides on.
func (t *Table) Get(k Key) (Row, storage.PageID, bool) {
	if dv, ok := t.delta.Get(k); ok {
		if dv.row == nil {
			return nil, dv.page, false // tombstone
		}
		return dv.row, dv.page, true
	}
	if id, ok := t.isBaseKey(k); ok {
		return t.gen(id), t.PageOfBase(id), true
	}
	return nil, storage.PageID{}, false
}

// ErrDuplicateKey is returned when inserting an existing primary key.
var ErrDuplicateKey = errors.New("engine: duplicate primary key")

// Insert adds a new row, assigning it a physical page. The caller must hold
// the X lock. It fails on duplicate keys.
//
// The table takes ownership of r (and of k, when the key is new to the
// overlay): callers must not mutate either after a successful write. Every
// write path used to clone defensively; the workloads all build fresh rows
// per write, so the clone only fed the allocator (DESIGN.md §15).
func (t *Table) Insert(k Key, r Row) (storage.PageID, error) {
	if dv, ok := t.delta.Get(k); ok {
		if dv.row != nil {
			return storage.PageID{}, ErrDuplicateKey
		}
		// Re-insert over tombstone reuses the row's original page.
		t.delta.Set(k, deltaVal{row: r, page: dv.page})
		t.liveRows++
		t.refreshIndexes(k, nil)
		return dv.page, nil
	}
	if _, ok := t.isBaseKey(k); ok {
		return storage.PageID{}, ErrDuplicateKey
	}
	page := t.nextAppendPage()
	t.delta.Set(k, deltaVal{row: r, page: page})
	t.liveRows++
	if id, ok := DecodeIntKey(k); ok {
		t.BumpAutoID(id)
	}
	t.refreshIndexes(k, nil)
	return page, nil
}

// InsertAt adds a row at a specific page (replica replay of a shipped
// insert, keeping page identity consistent with the primary). Like Insert,
// it takes ownership of k and r — replay hands over rows decoded from
// immutable record images.
func (t *Table) InsertAt(k Key, r Row, page storage.PageID) {
	old := t.visibleForIndex(k)
	// One overlay descent: Set returns the displaced entry, which tells
	// idempotent overwrite (visible row replaced in place) apart from a
	// fresh insert or a re-insert over a tombstone (row becomes visible).
	dv, replaced := t.delta.Set(k, deltaVal{row: r, page: page})
	if !replaced || dv.row == nil {
		t.liveRows++
		if id, ok := DecodeIntKey(k); ok {
			t.BumpAutoID(id)
		}
	}
	t.refreshIndexes(k, old)
}

// ErrRowNotFound is returned for updates/deletes of missing rows.
var ErrRowNotFound = errors.New("engine: row not found")

// Update replaces the row under k, returning the page and the old row (for
// undo). The caller must hold the X lock. The table takes ownership of k and
// r (see Insert).
func (t *Table) Update(k Key, r Row) (storage.PageID, Row, error) {
	old, page, ok := t.Get(k)
	if !ok {
		return storage.PageID{}, nil, ErrRowNotFound
	}
	t.delta.Set(k, deltaVal{row: r, page: page})
	t.refreshIndexes(k, old)
	return page, old, nil
}

// UpdateAt applies a replicated update image at the given page, taking
// ownership of k and r (see InsertAt).
func (t *Table) UpdateAt(k Key, r Row, page storage.PageID) {
	old := t.visibleForIndex(k)
	t.delta.Set(k, deltaVal{row: r, page: page})
	t.refreshIndexes(k, old)
}

// Delete tombstones the row under k, returning the page and old row. The
// caller must hold the X lock.
func (t *Table) Delete(k Key) (storage.PageID, Row, error) {
	old, page, ok := t.Get(k)
	if !ok {
		return storage.PageID{}, nil, ErrRowNotFound
	}
	t.delta.Set(k, deltaVal{row: nil, page: page})
	t.liveRows--
	t.refreshIndexes(k, old)
	return page, old, nil
}

// DeleteAt applies a replicated delete at the given page.
func (t *Table) DeleteAt(k Key, page storage.PageID) {
	old := t.visibleForIndex(k)
	dv, replaced := t.delta.Set(k, deltaVal{row: nil, page: page})
	visible := dv.row != nil
	if !replaced {
		_, visible = t.isBaseKey(k)
	}
	if visible {
		t.liveRows--
	}
	t.refreshIndexes(k, old)
}

// undoSet restores the exact prior delta state. wasDelta records whether
// the key had a delta entry (row or tombstone) before the transaction's
// write: a prior value that lived only in the base table is restored by
// dropping the overlay, NOT by materializing the base image as a delta
// entry — that would be visible-state correct but would diverge the
// overlay from replicas, which never hear about aborted writes (the
// convergence invariant compares overlays byte for byte). Used by
// transaction rollback.
func (t *Table) undoSet(k Key, prior Row, page storage.PageID, existedBefore, wasDelta bool) {
	old := t.visibleForIndex(k)
	_, _, visible := t.Get(k)
	switch {
	case existedBefore && wasDelta:
		// prior is the exact row object the transaction displaced; rows are
		// immutable once written, so restoring it uncloned is safe.
		t.delta.Set(k, deltaVal{row: prior, page: page})
		if !visible {
			t.liveRows++
		}
	case existedBefore:
		// Prior value lived only in the base table: the base row shows
		// through again once the overlay entry is gone.
		t.delta.Delete(k)
		if !visible {
			t.liveRows++
		}
	case wasDelta:
		// Insert over a tombstone: put the tombstone back.
		if visible {
			t.liveRows--
		}
		t.delta.Set(k, deltaVal{row: nil, page: page})
	default:
		// Fresh insert: drop the entry entirely.
		if visible {
			t.liveRows--
		}
		t.delta.Delete(k)
	}
	t.refreshIndexes(k, old)
}

// Scan visits visible rows with primary-key ids in [loID, hiID] in key
// order, merging generator-backed rows with the delta overlay. It supports
// only integer single-column keys for the base portion; delta-only tables
// (baseRows == 0) may use Range instead for arbitrary keys.
func (t *Table) Scan(loID, hiID int64, fn func(id int64, r Row) bool) {
	for id := loID; id <= hiID; id++ {
		k := IntKey(id)
		if dv, ok := t.delta.Get(k); ok {
			if dv.row == nil {
				continue
			}
			if !fn(id, dv.row) {
				return
			}
			continue
		}
		if id >= 1 && id <= t.baseRows {
			if !fn(id, t.gen(id)) {
				return
			}
		}
	}
}

// Range visits delta-held visible rows with keys in [lo, hi) in order.
// For fully delta-backed tables this is a complete index range scan.
func (t *Table) Range(lo, hi Key, fn func(k Key, r Row) bool) {
	t.delta.AscendRange(lo, hi, func(k Key, dv deltaVal) bool {
		if dv.row == nil {
			return true
		}
		return fn(k, dv.row)
	})
}

// DeltaLen returns the number of delta entries (rows + tombstones), a
// memory-pressure signal for tests.
func (t *Table) DeltaLen() int { return t.delta.Len() }

// ScanDelta visits every delta entry — live rows AND tombstones — in key
// order. The replica-convergence checker uses it to compare a replica's
// overlay against the primary's byte for byte: tombstones matter there
// (a missing tombstone is a lost delete), so unlike Range it does not skip
// them. row is nil for tombstones.
func (t *Table) ScanDelta(fn func(k Key, row Row, tombstone bool) bool) {
	t.delta.AscendRange(nil, nil, func(k Key, dv deltaVal) bool {
		return fn(k, dv.row, dv.row == nil)
	})
}

// VisibleScan visits every visible row in primary-key order, merging the
// generator-backed base rows with the delta overlay. It backs eager index
// builds, the full-scan query plan, and the IndexCoherent checker's
// ground-truth projection.
func (t *Table) VisibleScan(fn func(k Key, r Row) bool) {
	type dent struct {
		k   Key
		row Row // nil = tombstone, suppresses the base row
	}
	var delta []dent
	t.delta.AscendRange(nil, nil, func(k Key, dv deltaVal) bool {
		delta = append(delta, dent{k: k, row: dv.row})
		return true
	})
	di := 0
	for id := int64(1); id <= t.baseRows; id++ {
		k := IntKey(id)
		for di < len(delta) && bytes.Compare(delta[di].k, k) < 0 {
			if delta[di].row != nil && !fn(delta[di].k, delta[di].row) {
				return
			}
			di++
		}
		if di < len(delta) && bytes.Equal(delta[di].k, k) {
			if delta[di].row != nil && !fn(delta[di].k, delta[di].row) {
				return
			}
			di++
			continue
		}
		if !fn(k, t.gen(id)) {
			return
		}
	}
	for ; di < len(delta); di++ {
		if delta[di].row != nil && !fn(delta[di].k, delta[di].row) {
			return
		}
	}
}

// CreateIndex builds a secondary index over the named column, eagerly
// materialized from the table's current visible rows. id is the synthetic
// TableID naming the index's page space (allocated by the DB). One index
// per column is supported.
func (t *Table) CreateIndex(name string, id storage.TableID, colName string) (*Index, error) {
	col := t.Schema.ColIndex(colName)
	if col < 0 {
		return nil, fmt.Errorf("engine: index %s: unknown column %q in table %s", name, colName, t.Schema.Name)
	}
	switch t.Schema.Cols[col].Kind {
	case KindInt, KindFloat, KindString:
	default:
		return nil, fmt.Errorf("engine: index %s: cannot index %v column %q", name, t.Schema.Cols[col].Kind, colName)
	}
	if t.ixByCol == nil {
		t.ixByCol = make(map[int]*Index)
	}
	if _, dup := t.ixByCol[col]; dup {
		return nil, fmt.Errorf("engine: table %s already has an index on column %q", t.Schema.Name, colName)
	}
	ix := newIndex(name, id, t, col)
	t.indexes = append(t.indexes, ix)
	t.ixByCol[col] = ix
	return ix, nil
}

// Indexes returns the table's secondary indexes in creation order.
func (t *Table) Indexes() []*Index { return t.indexes }

// IndexOn returns the index over the given column offset, or nil.
func (t *Table) IndexOn(col int) *Index { return t.ixByCol[col] }

// IndexOps returns the physical index-entry changes recorded by the most
// recent mutation of this table (valid until the next mutation). Writing
// transactions read it to emit index WAL records and charge index pages.
func (t *Table) IndexOps() []IndexOp { return t.ixOps }

// visibleForIndex returns the visible row under k, or nil — but only when
// the table has indexes (the lookup exists solely to diff index state
// around a mutation, so index-free tables skip it entirely).
func (t *Table) visibleForIndex(k Key) Row {
	if len(t.indexes) == 0 {
		return nil
	}
	if r, _, ok := t.Get(k); ok {
		return r
	}
	return nil
}

// refreshIndexes diffs the visible row under k against its pre-mutation
// image and patches every index, recording the entry changes on ixOps.
// Centralizing maintenance here — below transactions, below replay — is
// what makes indexes exact projections on every node: rollback and replica
// replay are just more visible-state changes.
func (t *Table) refreshIndexes(k Key, old Row) {
	if len(t.indexes) == 0 {
		return
	}
	t.ixOps = t.ixOps[:0]
	var cur Row
	if r, _, ok := t.Get(k); ok {
		cur = r
	}
	for _, ix := range t.indexes {
		ix.apply(k, old, cur)
	}
}
