package engine_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"cloudybench/internal/engine"
	"cloudybench/internal/engine/difftest"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// This file is the exported-API half of the recovery-equivalence
// differential test: it reuses the difftest dual-plan comparator to prove
// that a recovered node's secondary indexes are indistinguishable from the
// full-scan oracle, and that index-plan reads on the recovered node match
// the same reads on an independent committed-prefix replay. It lives in
// package engine_test because difftest imports engine.

func recoverySchema() *engine.Schema {
	return &engine.Schema{
		Name: "items",
		Cols: []engine.Column{
			{Name: "IT_ID", Kind: engine.KindInt},
			{Name: "IT_GROUP", Kind: engine.KindInt},
			{Name: "IT_PRICE", Kind: engine.KindFloat},
			{Name: "IT_TAG", Kind: engine.KindString},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 32,
	}
}

func recoveryRow(id int64) engine.Row {
	return engine.Row{
		engine.Int(id),
		engine.Int(id % 12),
		engine.Float(float64(id%97) / 4),
		engine.Str(fmt.Sprintf("t%d", id%8)),
	}
}

func newRecoveryDB(t *testing.T) (*sim.Sim, *engine.DB, *engine.Table) {
	t.Helper()
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := engine.NewDB(s)
	tbl := db.MustCreateTable(recoverySchema(), 60, recoveryRow)
	db.MustCreateIndex("items", "ix_items_group", "IT_GROUP")
	db.MustCreateIndex("items", "ix_items_tag", "IT_TAG")
	return s, db, tbl
}

// TestRecoveryDifftestIndexEquivalence crashes a node mid-transaction with a
// torn tail, recovers a fresh instance, and drives the difftest comparator
// over every indexed column of the recovered table: the index plan must be
// byte-identical to the full-scan oracle, and both must match an independent
// replay of only the committed records.
func TestRecoveryDifftestIndexEquivalence(t *testing.T) {
	s, db, tbl := newRecoveryDB(t)
	r := rand.New(rand.NewSource(99))
	s.Go("load", func(p *sim.Proc) {
		for i := 0; i < 120; i++ {
			txn := db.Begin(p)
			id := int64(r.Intn(150)) + 20
			switch r.Intn(3) {
			case 0:
				txn.Insert(tbl, recoveryRow(id))
			case 1:
				txn.Update(tbl, engine.IntKey(id), engine.Row{engine.Int(id), engine.Int(r.Int63n(12)), engine.Float(1), engine.Str("upd")})
			case 2:
				txn.Delete(tbl, engine.IntKey(id))
			}
			if r.Intn(6) == 0 {
				txn.Abort()
			} else {
				txn.Commit()
			}
		}
		// Leave a transaction in flight across the crash; an earlier commit
		// has already dragged nothing of it to disk, so give it a committed
		// successor to group-commit its first record into durability.
		loser := db.Begin(p)
		loser.Insert(tbl, engine.Row{engine.Int(900), engine.Int(5), engine.Float(9), engine.Str("loser")})
		wtxn := db.Begin(p)
		wtxn.Update(tbl, engine.IntKey(25), engine.Row{engine.Int(25), engine.Int(6), engine.Float(3), engine.Str("final")})
		wtxn.Commit()
		loser.Update(tbl, engine.IntKey(900), engine.Row{engine.Int(900), engine.Int(5), engine.Float(9), engine.Str("tail")})
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	tail, _ := db.Log().Crash(storage.TornFlip)
	snap := db.Log().Snapshot()

	// Recover a fresh instance.
	_, rdb, rtbl := newRecoveryDB(t)
	st, err := rdb.Recover(snap, tail, engine.RecoveryOpts{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if st.Losers == 0 {
		t.Fatal("workload left no losers; test is vacuous")
	}

	// Independent oracle: replay only committed records via the replica path.
	_, odb, otbl := newRecoveryDB(t)
	lg := storage.NewLog()
	lg.Restore(snap)
	recs := lg.Read(0, 0)
	committed := make(map[uint64]bool)
	for i := range recs {
		if recs[i].Type == storage.RecCommit {
			committed[recs[i].Txn] = true
		}
	}
	for i := range recs {
		if committed[recs[i].Txn] {
			if err := odb.Apply(recs[i]); err != nil {
				t.Fatalf("oracle apply: %v", err)
			}
		}
	}

	var d difftest.Differ
	ranges := []struct {
		col    int
		lo, hi engine.Value
	}{
		{1, engine.Int(0), engine.Int(12)},
		{3, engine.Str(""), engine.Str("zz")},
	}
	for _, q := range ranges {
		rRows, err := d.Compare(rtbl, q.col, q.lo, q.hi, 0)
		if err != nil {
			t.Fatalf("compare recovered col %d: %v", q.col, err)
		}
		oRows, err := d.Compare(otbl, q.col, q.lo, q.hi, 0)
		if err != nil {
			t.Fatalf("compare oracle col %d: %v", q.col, err)
		}
		if len(rRows) != len(oRows) {
			t.Fatalf("col %d: recovered index returned %d rows, oracle replay %d", q.col, len(rRows), len(oRows))
		}
		for i := range rRows {
			rv := engine.EncodeRow(nil, rRows[i])
			ov := engine.EncodeRow(nil, oRows[i])
			if !bytes.Equal(rv, ov) {
				t.Fatalf("col %d row %d: recovered %v, oracle %v", q.col, i, rRows[i], oRows[i])
			}
		}
	}
	if !d.Clean() {
		t.Fatalf("index plan diverged from full-scan oracle after recovery: %v", d.Diffs)
	}
	if d.Compared != int64(len(ranges))*2 {
		t.Fatalf("compared %d scans, want %d", d.Compared, len(ranges)*2)
	}
}
