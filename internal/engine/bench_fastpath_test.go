package engine

import (
	"fmt"
	"testing"
	"time"

	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// Fast-path microbenchmarks for the txn commit loop and the replica apply
// path (BENCH_engine.json). The schema mirrors the CloudyBench customer
// table's shape — int key, two low-cardinality strings, a float — so the
// row-image encode/decode cost is representative.
//
// Refreshing the committed baseline after an intentional engine change
// (fixed iteration counts so runs stay comparable across machines; the txn
// benchmarks use a smaller count because each committed iteration grows the
// WAL, and the replica benchmark a larger one so steady-state GC behaviour
// is what gets measured):
//
//	{ go test -run '^$' -bench 'BenchmarkTxn' -benchtime 100000x -count 5 ./internal/engine/
//	  go test -run '^$' -bench 'BenchmarkReplicaApply' -benchtime 1000000x -count 5 ./internal/engine/
//	} > internal/engine/testdata/bench_engine_baseline.txt

func benchSchema() *Schema {
	return &Schema{
		Name: "bench_rows",
		Cols: []Column{
			{Name: "id", Kind: KindInt},
			{Name: "name", Kind: KindString},
			{Name: "status", Kind: KindString},
			{Name: "amount", Kind: KindFloat},
		},
		KeyCols:     []int{0},
		AvgRowBytes: 64,
	}
}

func benchRow(id int64) Row {
	return Row{
		Int(id),
		Str(fmt.Sprintf("name-%04d", id%512)),
		Str("pending"),
		Float(float64(id) * 0.25),
	}
}

// benchInSim runs fn on a simulation process and drains the sim.
func benchInSim(b *testing.B, fn func(p *sim.Proc)) {
	b.Helper()
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	s.Go("bench", func(p *sim.Proc) { fn(p) })
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTxnCommit measures the uncontended write-transaction hot loop:
// Begin, one hot-row update, Commit. The two row buffers alternate so the
// engine's ownership-transfer contract is respected without allocating a
// fresh row per iteration (the row replaced in the delta two commits ago is
// unreferenced and safe to reuse).
func BenchmarkTxnCommit(b *testing.B) {
	benchInSim(b, func(p *sim.Proc) {
		s := p.Sim()
		db := NewDB(s)
		tbl := db.MustCreateTable(benchSchema(), 0, nil)
		seedTxn := db.Begin(p)
		if _, err := seedTxn.Insert(tbl, benchRow(1)); err != nil {
			b.Fatal(err)
		}
		if _, err := seedTxn.Commit(); err != nil {
			b.Fatal(err)
		}
		rowA, rowB := benchRow(1), benchRow(1)
		k := tbl.Schema.KeyOf(rowA)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			row := rowA
			if i&1 == 1 {
				row = rowB
			}
			row[3] = Float(float64(i))
			txn := db.Begin(p)
			if _, err := txn.Update(tbl, k, row); err != nil {
				b.Fatal(err)
			}
			if _, err := txn.Commit(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTxnAbort measures the rollback path: aborted transactions must
// leave no trace and, on the fast path, allocate nothing.
func BenchmarkTxnAbort(b *testing.B) {
	benchInSim(b, func(p *sim.Proc) {
		s := p.Sim()
		db := NewDB(s)
		tbl := db.MustCreateTable(benchSchema(), 0, nil)
		seedTxn := db.Begin(p)
		if _, err := seedTxn.Insert(tbl, benchRow(1)); err != nil {
			b.Fatal(err)
		}
		if _, err := seedTxn.Commit(); err != nil {
			b.Fatal(err)
		}
		rowA, rowB := benchRow(1), benchRow(1)
		k := tbl.Schema.KeyOf(rowA)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			row := rowA
			if i&1 == 1 {
				row = rowB
			}
			txn := db.Begin(p)
			if _, err := txn.Update(tbl, k, row); err != nil {
				b.Fatal(err)
			}
			if err := txn.Abort(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// replicaBatch builds a committed WAL batch (inserts then updates over a
// small key range, with commit markers) and a replica DB to apply it to.
func replicaBatch(b *testing.B) (*DB, []storage.Record) {
	b.Helper()
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	var recs []storage.Record
	replica := NewDB(s)
	replica.MustCreateTable(benchSchema(), 0, nil)

	primary := NewDB(s)
	tbl := primary.MustCreateTable(benchSchema(), 0, nil)
	s.Go("build", func(p *sim.Proc) {
		for txn := 0; txn < 32; txn++ {
			t := primary.Begin(p)
			for j := 0; j < 7; j++ {
				id := int64(txn*7 + j + 1)
				if _, err := t.Insert(tbl, benchRow(id)); err != nil {
					panic(err)
				}
			}
			appended, err := t.Commit()
			if err != nil {
				panic(err)
			}
			recs = append(recs, append([]storage.Record(nil), appended...)...)
		}
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	return replica, recs
}

// BenchmarkReplicaApply measures the replica replay path per record: a
// shipped batch of insert records (plus commit markers) applied to a
// replica's delta overlay through the batched path. Idempotent replay keeps
// the replica in steady state across iterations; ns/op and allocs/op are
// per record.
func BenchmarkReplicaApply(b *testing.B) {
	replica, recs := replicaBatch(b)
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		batch := recs
		if rest := b.N - done; rest < len(batch) {
			batch = batch[:rest]
		}
		if err := replica.ApplyBatch(batch); err != nil {
			b.Fatal(err)
		}
		done += len(batch)
	}
}
