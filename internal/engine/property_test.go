package engine

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"cloudybench/internal/sim"
)

// TestPropertyTxnSequencesMatchReference drives random single-process
// transaction sequences (insert/update/delete, randomly committed or
// aborted) against both the engine and a plain-map reference model, then
// checks full-state agreement. This pins atomicity: aborted work must be
// invisible, committed work durable.
func TestPropertyTxnSequencesMatchReference(t *testing.T) {
	check := func(seed int64, opsRaw uint16) bool {
		nOps := int(opsRaw%300) + 50
		r := rand.New(rand.NewSource(seed))
		s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
		db := NewDB(s)
		const base = 50
		tbl := db.MustCreateTable(testSchema(), base, genOrder)

		// Reference: id -> status string; base rows start NEW.
		ref := make(map[int64]string)
		for i := int64(1); i <= base; i++ {
			ref[i] = "NEW"
		}
		nextID := int64(base + 1)
		okAll := true

		s.Go("driver", func(p *sim.Proc) {
			for i := 0; i < nOps; i++ {
				txn := db.Begin(p)
				shadow := make(map[int64]*string) // staged changes
				nStmts := 1 + r.Intn(4)
				var staged []int64
				for j := 0; j < nStmts; j++ {
					switch r.Intn(3) {
					case 0: // insert
						id := nextID
						nextID++
						if _, err := txn.Insert(tbl, genOrder(id)); err != nil {
							okAll = false
							return
						}
						v := "NEW"
						shadow[id] = &v
						staged = append(staged, id)
					case 1: // update random id if visible
						id := int64(r.Intn(int(nextID))) + 1
						status := fmt.Sprintf("S%d", i)
						_, err := txn.Update(tbl, IntKey(id), Row{Int(id), Str(status)})
						if err == nil {
							shadow[id] = &status
							staged = append(staged, id)
						}
					case 2: // delete random id if visible
						id := int64(r.Intn(int(nextID))) + 1
						_, err := txn.Delete(tbl, IntKey(id))
						if err == nil {
							shadow[id] = nil
							staged = append(staged, id)
						}
					}
				}
				if r.Intn(4) == 0 {
					txn.Abort() // staged changes must vanish
				} else {
					if _, err := txn.Commit(); err != nil {
						okAll = false
						return
					}
					for _, id := range staged {
						if v := shadow[id]; v == nil {
							delete(ref, id)
						} else {
							ref[id] = *v
						}
					}
				}
			}
		})
		if err := s.Run(); err != nil {
			return false
		}
		if !okAll {
			return false
		}
		// Full-state comparison.
		if tbl.LiveRows() != int64(len(ref)) {
			return false
		}
		for id, status := range ref {
			row, _, ok := tbl.Get(IntKey(id))
			if !ok || row[1].S != status {
				return false
			}
		}
		// And nothing beyond the reference is visible.
		visible := 0
		tbl.Scan(1, nextID, func(id int64, r Row) bool {
			visible++
			_, ok := ref[id]
			if !ok {
				visible = -1 << 30
				return false
			}
			return true
		})
		return visible == len(ref)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyWALReplayReconstructsState replays every committed WAL record
// into a fresh replica and checks the replica converges to the primary for
// random workloads — the invariant all replication correctness rests on.
func TestPropertyWALReplayReconstructsState(t *testing.T) {
	check := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
		primary := NewDB(s)
		replica := NewDB(s)
		const base = 30
		pt := primary.MustCreateTable(testSchema(), base, genOrder)
		rt := replica.MustCreateTable(testSchema(), base, genOrder)

		applyErr := false
		s.Go("driver", func(p *sim.Proc) {
			for i := 0; i < 120; i++ {
				txn := primary.Begin(p)
				id := int64(r.Intn(base*2)) + 1
				switch r.Intn(3) {
				case 0:
					txn.Insert(pt, genOrder(pt.NextAutoID()))
				case 1:
					txn.Update(pt, IntKey(id), Row{Int(id), Str("PAID")})
				case 2:
					txn.Delete(pt, IntKey(id))
				}
				if r.Intn(5) == 0 {
					txn.Abort()
				} else {
					// Ship what Commit publishes — the committed after-image
					// stream replicas see — immediately, while the shared
					// record buffer is valid.
					recs, _ := txn.Commit()
					for _, rec := range recs {
						if err := replica.Apply(rec); err != nil {
							applyErr = true
							return
						}
					}
				}
			}
		})
		if err := s.Run(); err != nil || applyErr {
			return false
		}
		if rt.LiveRows() != pt.LiveRows() {
			return false
		}
		max := pt.MaxID() + 5
		for id := int64(1); id <= max; id++ {
			prow, _, pok := pt.Get(IntKey(id))
			rrow, _, rok := rt.Get(IntKey(id))
			if pok != rok {
				return false
			}
			if pok && !prow.Equal(rrow) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
