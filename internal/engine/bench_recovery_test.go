package engine

import (
	"testing"
	"time"

	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// Recovery microbenchmark (BENCH_engine.json). The redo loop is the hot
// path of crash recovery — every durable record of every crashed node flows
// through it — so its per-record cost is baselined alongside the txn fast
// path. The log is built once; each iteration replays it into a fresh
// catalog via the full Recover pass (analysis + redo + undo), so ns/op is
// per-recovery over a fixed-size log.
//
// Refreshing the committed baseline:
//
//	go test -run '^$' -bench 'BenchmarkRecoveryRedo' -benchmem -benchtime 200x -count 5 ./internal/engine/ \
//	  >> internal/engine/testdata/bench_engine_baseline.txt

// crashedBenchLog builds a durable log of committed update/insert traffic
// plus a handful of in-flight losers, then crashes it.
func crashedBenchLog(b *testing.B) storage.LogSnapshot {
	b.Helper()
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := NewDB(s)
	tbl := db.MustCreateTable(benchSchema(), 0, nil)
	s.Go("build", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			t := db.Begin(p)
			id := int64(i%64 + 1)
			if _, _, ok := tbl.Get(IntKey(id)); !ok {
				if _, err := t.Insert(tbl, benchRow(id)); err != nil {
					panic(err)
				}
			} else {
				row := benchRow(id)
				row[3] = Float(float64(i))
				if _, err := t.Update(tbl, IntKey(id), row); err != nil {
					panic(err)
				}
			}
			if _, err := t.Commit(); err != nil {
				panic(err)
			}
		}
		// In-flight losers: logged (durable via the next commit's sync) but
		// never committed, so every recovery runs a real undo pass too.
		losers := make([]*Txn, 0, 4)
		for w := 0; w < 4; w++ {
			t := db.Begin(p)
			if _, err := t.Insert(tbl, benchRow(int64(1000+w))); err != nil {
				panic(err)
			}
			losers = append(losers, t)
		}
		_ = losers
		t := db.Begin(p)
		row := benchRow(1)
		row[3] = Float(9.5)
		if _, err := t.Update(tbl, IntKey(1), row); err != nil {
			panic(err)
		}
		if _, err := t.Commit(); err != nil {
			panic(err)
		}
	})
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
	db.Log().Crash(storage.TornNone)
	return db.Log().Snapshot()
}

// BenchmarkRecoveryRedo measures a full crash-recovery pass — analysis,
// redo of ~200 committed txns over 64 hot keys, undo of 4 losers — into a
// fresh catalog.
func BenchmarkRecoveryRedo(b *testing.B) {
	snap := crashedBenchLog(b)
	epoch := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db := NewDB(sim.New(epoch))
		db.MustCreateTable(benchSchema(), 0, nil)
		st, err := db.Recover(snap, nil, RecoveryOpts{})
		if err != nil {
			b.Fatal(err)
		}
		if st.Losers != 4 {
			b.Fatalf("losers = %d, want 4", st.Losers)
		}
	}
}
