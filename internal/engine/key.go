package engine

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Key is a memcomparable encoding of one or more values: bytes.Compare on
// encoded keys agrees with value-wise comparison. This lets one B-tree type
// serve both CloudyBench's dense int64 primary keys and TPC-C's composite
// (warehouse, district, id) keys.
type Key []byte

// Key encoding tags, chosen so NULL < INT < STRING < FLOAT in encoded
// order. Cross-kind order is arbitrary but fixed: columns are homogeneous,
// so ordering only ever compares values of one kind.
const (
	tagNull   byte = 0x01
	tagInt    byte = 0x02
	tagString byte = 0x03
	tagFloat  byte = 0x04
)

// floatKeyBits maps an IEEE-754 double to a uint64 whose unsigned order
// matches numeric order: negative values flip every bit, non-negative
// values flip only the sign bit.
func floatKeyBits(f float64) uint64 {
	bits := math.Float64bits(f)
	if bits&(1<<63) != 0 {
		return ^bits
	}
	return bits | (1 << 63)
}

// EncodeKey builds a memcomparable key from the given values.
func EncodeKey(vals ...Value) Key {
	var k []byte
	for _, v := range vals {
		switch v.Kind {
		case KindNull:
			k = append(k, tagNull)
		case KindInt:
			k = append(k, tagInt)
			// Flip the sign bit so negative < positive in unsigned order.
			k = binary.BigEndian.AppendUint64(k, uint64(v.I)^(1<<63))
		case KindString:
			k = append(k, tagString)
			// Escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00 so
			// prefixes order correctly.
			for i := 0; i < len(v.S); i++ {
				c := v.S[i]
				k = append(k, c)
				if c == 0x00 {
					k = append(k, 0xFF)
				}
			}
			k = append(k, 0x00, 0x00)
		case KindFloat:
			k = append(k, tagFloat)
			k = binary.BigEndian.AppendUint64(k, floatKeyBits(v.F))
		default:
			panic(fmt.Sprintf("engine: cannot encode kind %v in key", v.Kind))
		}
	}
	return k
}

// DecodeKeyValue decodes the first value of a key, returning the value and
// the number of bytes it occupied. ok is false for malformed keys.
func DecodeKeyValue(k Key) (Value, int, bool) {
	if len(k) == 0 {
		return Value{}, 0, false
	}
	switch k[0] {
	case tagNull:
		return Null(), 1, true
	case tagInt:
		if len(k) < 9 {
			return Value{}, 0, false
		}
		return Int(int64(binary.BigEndian.Uint64(k[1:]) ^ (1 << 63))), 9, true
	case tagFloat:
		if len(k) < 9 {
			return Value{}, 0, false
		}
		bits := binary.BigEndian.Uint64(k[1:])
		if bits&(1<<63) != 0 {
			bits &^= 1 << 63
		} else {
			bits = ^bits
		}
		return Float(math.Float64frombits(bits)), 9, true
	case tagString:
		var s []byte
		i := 1
		for {
			if i >= len(k) {
				return Value{}, 0, false
			}
			if k[i] == 0x00 {
				if i+1 < len(k) && k[i+1] == 0xFF {
					s = append(s, 0x00)
					i += 2
					continue
				}
				if i+1 >= len(k) {
					return Value{}, 0, false
				}
				return Str(string(s)), i + 2, true
			}
			s = append(s, k[i])
			i++
		}
	default:
		return Value{}, 0, false
	}
}

// IntKey encodes a single int64 primary key (the common CloudyBench case).
func IntKey(id int64) Key { return EncodeKey(Int(id)) }

// DecodeIntKey extracts the int64 from a single-column integer key. It
// reports ok=false for keys of any other shape.
func DecodeIntKey(k Key) (int64, bool) {
	if len(k) != 9 || k[0] != tagInt {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(k[1:]) ^ (1 << 63)), true
}

// String renders the key for debugging.
func (k Key) String() string {
	out := ""
	buf := []byte(k)
	for len(buf) > 0 {
		if out != "" {
			out += "/"
		}
		switch buf[0] {
		case tagNull:
			out += "NULL"
			buf = buf[1:]
		case tagFloat:
			v, n, ok := DecodeKeyValue(Key(buf))
			if !ok {
				return fmt.Sprintf("%x", []byte(k))
			}
			out += v.String()
			buf = buf[n:]
		case tagInt:
			if len(buf) < 9 {
				return fmt.Sprintf("%x", []byte(k))
			}
			out += fmt.Sprint(int64(binary.BigEndian.Uint64(buf[1:9]) ^ (1 << 63)))
			buf = buf[9:]
		case tagString:
			buf = buf[1:]
			var s []byte
			for {
				if len(buf) == 0 {
					return fmt.Sprintf("%x", []byte(k))
				}
				if buf[0] == 0x00 {
					if len(buf) >= 2 && buf[1] == 0xFF {
						s = append(s, 0x00)
						buf = buf[2:]
						continue
					}
					buf = buf[2:]
					break
				}
				s = append(s, buf[0])
				buf = buf[1:]
			}
			out += string(s)
		default:
			return fmt.Sprintf("%x", []byte(k))
		}
	}
	return out
}
