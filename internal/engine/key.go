package engine

import (
	"encoding/binary"
	"fmt"
)

// Key is a memcomparable encoding of one or more values: bytes.Compare on
// encoded keys agrees with value-wise comparison. This lets one B-tree type
// serve both CloudyBench's dense int64 primary keys and TPC-C's composite
// (warehouse, district, id) keys.
type Key []byte

// Key encoding tags, chosen so NULL < INT < STRING in encoded order.
const (
	tagNull   byte = 0x01
	tagInt    byte = 0x02
	tagString byte = 0x03
)

// EncodeKey builds a memcomparable key from the given values.
func EncodeKey(vals ...Value) Key {
	var k []byte
	for _, v := range vals {
		switch v.Kind {
		case KindNull:
			k = append(k, tagNull)
		case KindInt:
			k = append(k, tagInt)
			// Flip the sign bit so negative < positive in unsigned order.
			k = binary.BigEndian.AppendUint64(k, uint64(v.I)^(1<<63))
		case KindString:
			k = append(k, tagString)
			// Escape 0x00 as 0x00 0xFF and terminate with 0x00 0x00 so
			// prefixes order correctly.
			for i := 0; i < len(v.S); i++ {
				c := v.S[i]
				k = append(k, c)
				if c == 0x00 {
					k = append(k, 0xFF)
				}
			}
			k = append(k, 0x00, 0x00)
		default:
			panic(fmt.Sprintf("engine: cannot encode kind %v in key", v.Kind))
		}
	}
	return k
}

// IntKey encodes a single int64 primary key (the common CloudyBench case).
func IntKey(id int64) Key { return EncodeKey(Int(id)) }

// DecodeIntKey extracts the int64 from a single-column integer key. It
// reports ok=false for keys of any other shape.
func DecodeIntKey(k Key) (int64, bool) {
	if len(k) != 9 || k[0] != tagInt {
		return 0, false
	}
	return int64(binary.BigEndian.Uint64(k[1:]) ^ (1 << 63)), true
}

// String renders the key for debugging.
func (k Key) String() string {
	out := ""
	buf := []byte(k)
	for len(buf) > 0 {
		if out != "" {
			out += "/"
		}
		switch buf[0] {
		case tagNull:
			out += "NULL"
			buf = buf[1:]
		case tagInt:
			if len(buf) < 9 {
				return fmt.Sprintf("%x", []byte(k))
			}
			out += fmt.Sprint(int64(binary.BigEndian.Uint64(buf[1:9]) ^ (1 << 63)))
			buf = buf[9:]
		case tagString:
			buf = buf[1:]
			var s []byte
			for {
				if len(buf) == 0 {
					return fmt.Sprintf("%x", []byte(k))
				}
				if buf[0] == 0x00 {
					if len(buf) >= 2 && buf[1] == 0xFF {
						s = append(s, 0x00)
						buf = buf[2:]
						continue
					}
					buf = buf[2:]
					break
				}
				s = append(s, buf[0])
				buf = buf[1:]
			}
			out += string(s)
		default:
			return fmt.Sprintf("%x", []byte(k))
		}
	}
	return out
}
