// Package chaos injects faults into a simulated SUT cluster on a schedule
// compiled onto the virtual clock. Because the DES kernel is deterministic,
// a chaos run is exactly replayable: the same seed and schedule produce the
// same interleaving of faults and transactions, so a failure found once can
// be debugged forever.
//
// Every fault perturbs performance or availability, never correctness —
// stalled disks delay IO, error bursts reject requests (clients retry),
// crashed replicas buffer their replication backlog and catch up. The
// invariant checkers in internal/check must therefore PASS under any
// schedule; a FAIL means an engine bug, not an expected casualty of the
// fault. Faults model §II-E's restart philosophy extended to the messier
// failure modes real cloud databases are differentiated by.
package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cloudybench/internal/cluster"
	"cloudybench/internal/engine"
	"cloudybench/internal/netsim"
	"cloudybench/internal/node"
	"cloudybench/internal/sim"
	"cloudybench/internal/storage"
)

// Kind identifies a fault type.
type Kind string

// Fault kinds.
const (
	// DiskStall blocks the target node's backend page IO for the event
	// duration (a hung NVMe device or a storage-service brownout).
	DiskStall Kind = "disk-stall"
	// IOErrorBurst makes a fraction (Rate) of the target node's requests
	// fail with node.ErrIOFault for the duration; clients back off and
	// retry.
	IOErrorBurst Kind = "io-error-burst"
	// ReplicaCrash crashes the target replica mid-replay: the node goes
	// down, the stream buffers its backlog, and on restart the replica
	// drains the backlog (convergence is checked after quiesce).
	ReplicaCrash Kind = "replica-crash"
	// LinkDegrade adds ExtraLatency to every deployment link and scales
	// bandwidth by BWFactor for the duration (congested or flapping
	// fabric).
	LinkDegrade Kind = "link-degrade"
	// NodePause freezes the target node for the duration (VM live
	// migration, long GC pause): requests block rather than error, then
	// resume.
	NodePause Kind = "node-pause"
	// CacheDrop evicts every 2nd resident page of the target node's buffer
	// pool (an eviction storm), forcing re-fetch traffic.
	CacheDrop Kind = "cache-drop"
	// Partition symmetrically cuts every network path from GroupA endpoints
	// to GroupB endpoints (and back). With a positive Duration the cut
	// auto-heals; with zero Duration it stays until an explicit Heal event.
	Partition Kind = "partition"
	// AsymPartition cuts only GroupA -> GroupB (a gray failure: the primary
	// can still hear the cluster but not answer it, or vice versa).
	AsymPartition Kind = "asym-partition"
	// Heal removes the cuts between GroupA and GroupB, or every active cut
	// when both groups are empty.
	Heal Kind = "heal"
	// DelaySpike degrades every link between GroupA and GroupB with
	// ExtraLatency and BWFactor for the duration — packets are late, not
	// lost.
	DelaySpike Kind = "delay-spike"
	// NodeCrash kills the target node outright: its WAL keeps only what
	// fsync made durable (the in-flight record torn per Torn), every
	// volatile structure dies, and the cluster drives real crash recovery —
	// ARIES redo/undo for an RW, promote-and-seed for switch-over
	// architectures, durable-log resync for an RO. Unlike ReplicaCrash
	// (a scripted restart), recovery time here is emergent from the log.
	NodeCrash Kind = "node-crash"
)

// Event is one scheduled fault.
type Event struct {
	// At is the virtual-time offset of injection (from schedule start).
	At time.Duration
	// Kind selects the fault; Duration its active window (ignored by
	// ReplicaCrash and CacheDrop, which are instantaneous injections whose
	// recovery the cluster controls).
	Kind     Kind
	Duration time.Duration
	// Target names a node: "rw" or "roN". Ignored by LinkDegrade.
	Target string
	// Rate is the IOErrorBurst failure probability.
	Rate float64
	// ExtraLatency / BWFactor parameterize LinkDegrade and DelaySpike.
	ExtraLatency time.Duration
	BWFactor     float64
	// GroupA / GroupB name the endpoint groups of Partition, AsymPartition,
	// Heal, and DelaySpike events (netsim.Net endpoint names).
	GroupA, GroupB []string
	// Torn selects how a NodeCrash mangles the WAL record mid-write at the
	// crash instant (recovery must detect and truncate the damage).
	Torn storage.TornMode
}

// Schedule is a set of fault events. Events may overlap.
type Schedule struct {
	Events []Event
}

// Standard returns the canonical chaos schedule scaled onto a run window:
// one of each fault kind, placed at fixed fractions of the span so any
// measurement duration exercises the full gauntlet.
func Standard(span time.Duration) Schedule {
	frac := func(f float64) time.Duration { return time.Duration(float64(span) * f) }
	return Schedule{Events: []Event{
		{At: frac(0.10), Kind: DiskStall, Duration: frac(0.05), Target: "rw"},
		{At: frac(0.20), Kind: CacheDrop, Target: "rw"},
		{At: frac(0.30), Kind: LinkDegrade, Duration: frac(0.10), ExtraLatency: 200 * time.Microsecond, BWFactor: 0.25},
		{At: frac(0.45), Kind: IOErrorBurst, Duration: frac(0.08), Target: "rw", Rate: 0.3},
		{At: frac(0.60), Kind: ReplicaCrash, Target: "ro0"},
		{At: frac(0.75), Kind: NodePause, Duration: frac(0.04), Target: "rw"},
		{At: frac(0.85), Kind: DiskStall, Duration: frac(0.05), Target: "ro0"},
	}}
}

// Targets is the fault surface of one deployment.
type Targets struct {
	Cluster *cluster.Cluster
	Links   []*netsim.Link
	// Net is the deployment's endpoint registry, required by partition,
	// heal, and delay-spike events.
	Net *netsim.Net
	// Seed drives the IO-error-burst coin flips (deterministic per node).
	Seed int64
	// CrashRecovery carries the recovery teeth knobs applied to every
	// NodeCrash in the schedule (deliberately-broken recovery variants for
	// the durability gauntlet); zero value = honest ARIES recovery.
	CrashRecovery engine.RecoveryOpts
}

// Applied is the log entry of one injected fault.
type Applied struct {
	At     time.Duration
	Kind   Kind
	Target string
}

// CrashOutcome is the recovery record of one NodeCrash event: the stats of
// the ARIES pass that restored the node (zero for a promote-on-failure
// switch-over, where the crashed primary's recovery runs as the rejoin) and
// the error if recovery failed.
type CrashOutcome struct {
	At     time.Duration
	Target string
	Stats  engine.RecoveryStats
	Err    string
}

// Injector executes a schedule against a deployment.
type Injector struct {
	s       *sim.Sim
	sched   Schedule
	targets Targets

	applied []Applied
	crashes []CrashOutcome
}

// NewInjector binds a schedule to a deployment's fault surface, validating
// every event against it first: a malformed schedule (negative times, rates
// outside [0,1], unknown targets or endpoints) is a returned error, not a
// silently skipped fault.
func NewInjector(s *sim.Sim, sched Schedule, t Targets) (*Injector, error) {
	inj := &Injector{s: s, sched: sched, targets: t}
	if err := Validate(sched, t); err != nil {
		return nil, err
	}
	return inj, nil
}

// Validate checks a schedule against a fault surface without running it.
func Validate(sched Schedule, t Targets) error {
	lookup := func(target string) *cluster.Member {
		if t.Cluster == nil {
			return nil
		}
		return (&Injector{targets: t}).member(target)
	}
	for i, ev := range sched.Events {
		fail := func(format string, args ...any) error {
			return fmt.Errorf("chaos: event %d (%s@%v): %s", i, ev.Kind, ev.At, fmt.Sprintf(format, args...))
		}
		if ev.At < 0 {
			return fail("negative At")
		}
		if ev.Duration < 0 {
			return fail("negative Duration")
		}
		if ev.Rate < 0 || ev.Rate > 1 {
			return fail("Rate %v outside [0,1]", ev.Rate)
		}
		switch ev.Kind {
		case DiskStall, IOErrorBurst, ReplicaCrash, NodePause, CacheDrop, NodeCrash:
			if lookup(ev.Target) == nil {
				return fail("unknown node target %q", ev.Target)
			}
		case LinkDegrade:
			// Applies to all deployment links; nothing to resolve.
		case Partition, AsymPartition, DelaySpike:
			if t.Net == nil {
				return fail("requires a Net (no endpoint registry on the fault surface)")
			}
			if len(ev.GroupA) == 0 || len(ev.GroupB) == 0 {
				return fail("both endpoint groups must be non-empty")
			}
			if err := knownEndpoints(t.Net, ev.GroupA, ev.GroupB); err != nil {
				return fail("%v", err)
			}
		case Heal:
			if t.Net == nil {
				return fail("requires a Net (no endpoint registry on the fault surface)")
			}
			if (len(ev.GroupA) == 0) != (len(ev.GroupB) == 0) {
				return fail("heal groups must be both empty (heal all) or both non-empty")
			}
			if err := knownEndpoints(t.Net, ev.GroupA, ev.GroupB); err != nil {
				return fail("%v", err)
			}
		default:
			return fail("unknown fault kind")
		}
	}
	return nil
}

func knownEndpoints(net *netsim.Net, groups ...[]string) error {
	for _, g := range groups {
		for _, name := range g {
			if !net.HasEndpoint(name) {
				return fmt.Errorf("unknown endpoint %q", name)
			}
		}
	}
	return nil
}

// Start spawns one injector process per event, in stable (At, declaration)
// order so same-instant events always fire in declaration order. Events
// fire at their scheduled virtual times regardless of each other; overlaps
// compose.
func (inj *Injector) Start() {
	events := append([]Event(nil), inj.sched.Events...)
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })
	for i := range events {
		ev := events[i]
		name := fmt.Sprintf("chaos/%s@%v", ev.Kind, ev.At)
		inj.s.Go(name, func(p *sim.Proc) {
			p.Sleep(ev.At)
			inj.fire(p, ev)
		})
	}
}

// Applied returns the log of injected faults in firing order.
func (inj *Injector) Applied() []Applied { return inj.applied }

// Crashes returns the recovery outcomes of fired NodeCrash events, in
// firing order.
func (inj *Injector) Crashes() []CrashOutcome { return inj.crashes }

// member resolves an event target against the cluster.
func (inj *Injector) member(target string) *cluster.Member {
	if target == "rw" {
		return inj.targets.Cluster.RWMember()
	}
	var idx int
	if _, err := fmt.Sscanf(target, "ro%d", &idx); err != nil {
		return nil
	}
	return inj.targets.Cluster.Replica(idx)
}

func (inj *Injector) fire(p *sim.Proc, ev Event) {
	target := ev.Target
	if len(ev.GroupA) > 0 || len(ev.GroupB) > 0 {
		target = strings.Join(ev.GroupA, ",") + "|" + strings.Join(ev.GroupB, ",")
	}
	inj.applied = append(inj.applied, Applied{At: p.Elapsed(), Kind: ev.Kind, Target: target})
	switch ev.Kind {
	case DiskStall:
		if m := inj.member(ev.Target); m != nil {
			m.Node.InjectIOStall(p.Elapsed() + ev.Duration)
		}
	case IOErrorBurst:
		if m := inj.member(ev.Target); m != nil {
			m.Node.SetIOErrorRate(ev.Rate, inj.targets.Seed)
			p.Sleep(ev.Duration)
			m.Node.SetIOErrorRate(0, 0)
		}
	case ReplicaCrash:
		if m := inj.member(ev.Target); m != nil {
			inj.targets.Cluster.InjectCrashMidReplay(p, m)
		}
	case NodeCrash:
		if m := inj.member(ev.Target); m != nil {
			// Reserve the outcome slot up front so Crashes() lists kills in
			// firing order, not in completion order (a long recovery would
			// otherwise reorder behind later skipped kills).
			idx := len(inj.crashes)
			inj.crashes = append(inj.crashes, CrashOutcome{At: p.Elapsed(), Target: ev.Target})
			st, err := inj.targets.Cluster.InjectNodeCrash(p, m, cluster.CrashOpts{
				Torn:     ev.Torn,
				Recovery: inj.targets.CrashRecovery,
			})
			inj.crashes[idx].Stats = st
			if err != nil {
				inj.crashes[idx].Err = err.Error()
			}
		}
	case LinkDegrade:
		for _, l := range inj.targets.Links {
			l.Degrade(ev.ExtraLatency, ev.BWFactor)
		}
		p.Sleep(ev.Duration)
		for _, l := range inj.targets.Links {
			l.Restore()
		}
	case NodePause:
		if m := inj.member(ev.Target); m != nil && m.Node.State() == node.Running {
			// Stash the serverless resume hook so the autoscaler cannot cut
			// the pause short; requests block on the paused state.
			resume := m.Node.OnResumeNeeded
			m.Node.OnResumeNeeded = nil
			m.Node.SetState(node.Paused)
			p.Sleep(ev.Duration)
			m.Node.SetState(node.Running)
			m.Node.OnResumeNeeded = resume
		}
	case CacheDrop:
		if m := inj.member(ev.Target); m != nil {
			m.Node.Buf.DropEvery(2)
		}
	case Partition:
		inj.targets.Net.Partition(ev.GroupA, ev.GroupB, true)
		if ev.Duration > 0 {
			p.Sleep(ev.Duration)
			inj.targets.Net.Heal(ev.GroupA, ev.GroupB)
		}
	case AsymPartition:
		inj.targets.Net.Partition(ev.GroupA, ev.GroupB, false)
		if ev.Duration > 0 {
			p.Sleep(ev.Duration)
			inj.targets.Net.Heal(ev.GroupA, ev.GroupB)
		}
	case Heal:
		if len(ev.GroupA) == 0 && len(ev.GroupB) == 0 {
			inj.targets.Net.HealAll()
		} else {
			inj.targets.Net.Heal(ev.GroupA, ev.GroupB)
		}
	case DelaySpike:
		inj.targets.Net.Spike(ev.GroupA, ev.GroupB, ev.ExtraLatency, ev.BWFactor)
		p.Sleep(ev.Duration)
		inj.targets.Net.Unspike(ev.GroupA, ev.GroupB)
	}
}
