package chaos_test

import (
	"strings"
	"testing"
	"time"

	"cloudybench/internal/cdb"
	"cloudybench/internal/chaos"
	"cloudybench/internal/sim"
)

var epoch = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

// deployTargets builds a small real deployment so validation resolves node
// targets and endpoints against the genuine fault surface.
func deployTargets(t *testing.T) (*sim.Sim, *cdb.Deployment, chaos.Targets) {
	t.Helper()
	s := sim.New(epoch)
	d := cdb.MustDeploy(s, cdb.ProfileFor(cdb.RDS), cdb.Options{Replicas: 1})
	return s, d, chaos.Targets{Cluster: d.Cluster, Links: d.Links(), Net: d.Net, Seed: 42}
}

func TestValidateRejectsMalformedSchedules(t *testing.T) {
	_, _, targets := deployTargets(t)
	cases := []struct {
		name string
		ev   chaos.Event
		want string
	}{
		{"negative at", chaos.Event{At: -time.Second, Kind: chaos.DiskStall, Target: "rw"}, "negative At"},
		{"negative duration", chaos.Event{Kind: chaos.DiskStall, Duration: -time.Second, Target: "rw"}, "negative Duration"},
		{"rate above one", chaos.Event{Kind: chaos.IOErrorBurst, Target: "rw", Rate: 1.5}, "outside [0,1]"},
		{"rate below zero", chaos.Event{Kind: chaos.IOErrorBurst, Target: "rw", Rate: -0.1}, "outside [0,1]"},
		{"unknown node", chaos.Event{Kind: chaos.ReplicaCrash, Target: "ro9"}, "unknown node target"},
		{"unknown kind", chaos.Event{Kind: chaos.Kind("meteor-strike"), Target: "rw"}, "unknown fault kind"},
		{"empty partition group", chaos.Event{Kind: chaos.Partition, GroupA: []string{"rw"}}, "non-empty"},
		{"unknown endpoint", chaos.Event{Kind: chaos.Partition, GroupA: []string{"rw"}, GroupB: []string{"mars"}}, "unknown endpoint"},
		{"lopsided heal", chaos.Event{Kind: chaos.Heal, GroupA: []string{"rw"}}, "both empty"},
	}
	for _, tc := range cases {
		err := chaos.Validate(chaos.Schedule{Events: []chaos.Event{tc.ev}}, targets)
		if err == nil {
			t.Errorf("%s: Validate accepted the event", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

func TestValidatePartitionNeedsNet(t *testing.T) {
	_, _, targets := deployTargets(t)
	targets.Net = nil
	err := chaos.Validate(chaos.Schedule{Events: []chaos.Event{
		{Kind: chaos.Partition, GroupA: []string{"rw"}, GroupB: []string{"ro0"}},
	}}, targets)
	if err == nil || !strings.Contains(err.Error(), "requires a Net") {
		t.Fatalf("err = %v, want a missing-Net error", err)
	}
}

func TestValidateAcceptsTheStandardGauntlet(t *testing.T) {
	_, _, targets := deployTargets(t)
	if err := chaos.Validate(chaos.Standard(20*time.Second), targets); err != nil {
		t.Fatalf("standard schedule rejected: %v", err)
	}
}

func TestNewInjectorSurfacesValidationError(t *testing.T) {
	s, _, targets := deployTargets(t)
	_, err := chaos.NewInjector(s, chaos.Schedule{Events: []chaos.Event{
		{Kind: chaos.DiskStall, Target: "nope"},
	}}, targets)
	if err == nil {
		t.Fatal("NewInjector accepted an invalid schedule")
	}
}

// TestSameInstantEventsFireInDeclarationOrder: the injector stable-sorts by
// At, so two events at the same instant fire in declaration order even when
// declared out of At order relative to other events.
func TestSameInstantEventsFireInDeclarationOrder(t *testing.T) {
	s, d, targets := deployTargets(t)
	sched := chaos.Schedule{Events: []chaos.Event{
		{At: 2 * time.Second, Kind: chaos.CacheDrop, Target: "rw"},
		{At: time.Second, Kind: chaos.CacheDrop, Target: "ro0"},
		{At: time.Second, Kind: chaos.CacheDrop, Target: "rw"},
	}}
	inj, err := chaos.NewInjector(s, sched, targets)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	s.Go("ctl", func(p *sim.Proc) {
		p.Sleep(3 * time.Second)
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	applied := inj.Applied()
	if len(applied) != 3 {
		t.Fatalf("applied %d faults, want 3", len(applied))
	}
	// Sorted by At; the two t=1s events keep declaration order (ro0 first).
	if applied[0].Target != "ro0" || applied[1].Target != "rw" || applied[2].Target != "rw" {
		t.Fatalf("firing order: %+v", applied)
	}
	if applied[0].At != time.Second || applied[2].At != 2*time.Second {
		t.Fatalf("firing times: %+v", applied)
	}
}

// TestPartitionEventCutsAndHeals drives a partition fault through the
// injector and watches reachability flip on the deployment's Net.
func TestPartitionEventCutsAndHeals(t *testing.T) {
	s, d, targets := deployTargets(t)
	sched := chaos.Schedule{Events: []chaos.Event{
		{At: time.Second, Kind: chaos.Partition, Duration: 2 * time.Second,
			GroupA: []string{"rw"}, GroupB: []string{"ctrl", "ro0"}},
	}}
	inj, err := chaos.NewInjector(s, sched, targets)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	var during, after bool
	s.Go("ctl", func(p *sim.Proc) {
		p.Sleep(1500 * time.Millisecond)
		during = d.Net.Reachable("ctrl", "rw")
		p.Sleep(2 * time.Second)
		after = d.Net.Reachable("ctrl", "rw")
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if during {
		t.Error("rw reachable from ctrl during the partition")
	}
	if !after {
		t.Error("rw still unreachable after the auto-heal")
	}
	if got := inj.Applied()[0].Target; got != "rw|ctrl,ro0" {
		t.Errorf("applied target label = %q", got)
	}
}

// TestAsymPartitionCutsOneDirection: the gray-failure event severs only
// GroupA -> GroupB.
func TestAsymPartitionCutsOneDirection(t *testing.T) {
	s, d, targets := deployTargets(t)
	sched := chaos.Schedule{Events: []chaos.Event{
		{At: time.Second, Kind: chaos.AsymPartition, GroupA: []string{"rw"}, GroupB: []string{"ctrl"}},
		{At: 3 * time.Second, Kind: chaos.Heal},
	}}
	inj, err := chaos.NewInjector(s, sched, targets)
	if err != nil {
		t.Fatal(err)
	}
	inj.Start()
	var outCut, backOK, healed bool
	s.Go("ctl", func(p *sim.Proc) {
		p.Sleep(2 * time.Second)
		outCut = !d.Net.Reachable("rw", "ctrl")
		backOK = d.Net.Reachable("ctrl", "rw")
		p.Sleep(2 * time.Second)
		healed = d.Net.Reachable("rw", "ctrl")
		d.Shutdown()
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !outCut || !backOK {
		t.Errorf("asym cut: rw->ctrl cut=%v, ctrl->rw ok=%v, want true/true", outCut, backOK)
	}
	if !healed {
		t.Error("bare Heal event did not heal all cuts")
	}
}
