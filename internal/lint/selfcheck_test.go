package lint_test

import (
	"strings"
	"testing"

	"cloudybench/internal/lint"
)

// TestDetlintSelfCheck is the contract's anchor: the determinism suite
// must run clean over the whole module — exactly what CI's hard-fail
// `go run ./cmd/detlint ./...` step enforces. A failure here means either
// a real determinism hazard slipped in or an exception lost its
// //detlint:allow comment.
func TestDetlintSelfCheck(t *testing.T) {
	loader := sharedLoader(t)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages; the module walk looks broken", len(pkgs))
	}
	diags, err := lint.Run(lint.DefaultConfig(), lint.Analyzers(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestDetlintFlagsFixtures asserts the suite still has teeth: run
// CLI-style over each analyzer's fixture package (which the ./... walk
// skips, but which the config's testdata entry marks deterministic), every
// one must fail with at least one diagnostic from its own analyzer.
func TestDetlintFlagsFixtures(t *testing.T) {
	loader := sharedLoader(t)
	// vtblock's fixture declares its own Proc type, so its module path must
	// be appended to ProcTypes; the chain fixture is absent because its bare
	// "chainhelper" import only resolves under linttest's sibling loading.
	vtCfg := lint.DefaultConfig()
	vtCfg.ProcTypes = append(vtCfg.ProcTypes, "cloudybench/internal/lint/testdata/src/vtblock.Proc")
	cases := []struct {
		rule string
		cfg  *lint.Config
	}{
		{"wallclock", lint.DefaultConfig()},
		{"globalrand", lint.DefaultConfig()},
		{"maporder", lint.DefaultConfig()},
		{"rawgo", lint.DefaultConfig()},
		{"floatfold", lint.DefaultConfig()},
		{"vtblock", vtCfg},
		{"allowstale", lint.DefaultConfig()},
	}
	for _, tc := range cases {
		pkgs, err := loader.Load("./internal/lint/testdata/src/" + tc.rule)
		if err != nil {
			t.Fatalf("%s: %v", tc.rule, err)
		}
		diags, err := lint.Run(tc.cfg, lint.Analyzers(), pkgs)
		if err != nil {
			t.Fatalf("%s: %v", tc.rule, err)
		}
		found := false
		for _, d := range diags {
			if d.Analyzer == tc.rule {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("fixture %s produced no %s diagnostics under the default config", tc.rule, tc.rule)
		}
	}
}

// TestDiagnosticFormat pins the vet-style rendering the CI step greps.
func TestDiagnosticFormat(t *testing.T) {
	loader := sharedLoader(t)
	pkgs, err := loader.Load("./internal/lint/testdata/src/wallclock")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(lint.DefaultConfig(), lint.Analyzers(), pkgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) == 0 {
		t.Fatal("expected diagnostics")
	}
	s := diags[0].String()
	if !strings.Contains(s, "wallclock.go:") || !strings.Contains(s, ": wallclock: ") {
		t.Errorf("diagnostic format %q lost the file:line: analyzer: message shape", s)
	}
}
