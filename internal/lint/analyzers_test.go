package lint_test

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"cloudybench/internal/lint"
	"cloudybench/internal/lint/linttest"
)

// fixtureCfg binds the determinism contract to the given fixture package
// paths, with the repo's emitter packages so the emitter rule is testable.
func fixtureCfg(pkgs ...string) *lint.Config {
	return &lint.Config{
		Deterministic: pkgs,
		Emitters:      []string{"cloudybench/internal/report", "cloudybench/internal/obs"},
	}
}

func TestWallClock(t *testing.T) {
	linttest.Run(t, "wallclock", fixtureCfg("wallclock"), lint.WallClock)
}

func TestGlobalRand(t *testing.T) {
	linttest.Run(t, "globalrand", fixtureCfg("globalrand"), lint.GlobalRand)
}

// TestGlobalRandExempt proves the rng-package exemption: the same rule over
// a package configured as the randomness home produces nothing.
func TestGlobalRandExempt(t *testing.T) {
	cfg := fixtureCfg("globalrand_exempt")
	cfg.RandExempt = []string{"globalrand_exempt"}
	linttest.Run(t, "globalrand_exempt", cfg, lint.GlobalRand)
}

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "maporder", fixtureCfg("maporder"), lint.MapOrder)
}

func TestRawGo(t *testing.T) {
	linttest.Run(t, "rawgo", fixtureCfg("rawgo"), lint.RawGo)
}

// TestRawGoKernelBlessing proves the kernel carve-out: the same fixture,
// with its package configured as concurrency kernel, produces nothing.
func TestRawGoKernelBlessing(t *testing.T) {
	loader := sharedLoader(t)
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "rawgo"), "rawgokernel")
	if err != nil {
		t.Fatal(err)
	}
	cfg := fixtureCfg("rawgokernel")
	cfg.Kernel = []string{"rawgokernel"}
	diags, err := lint.Run(cfg, []*lint.Analyzer{lint.RawGo}, []*lint.Package{pkg})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("kernel-blessed package still flagged: %s", d)
	}
}

func TestFloatFold(t *testing.T) {
	linttest.Run(t, "floatfold", fixtureCfg("floatfold"), lint.FloatFold)
}

// TestBadSuppressions asserts that malformed, unknown-rule, and
// reason-less //detlint:allow comments are themselves reported rather than
// silently honoured.
func TestBadSuppressions(t *testing.T) {
	linttest.Run(t, "badsuppress", fixtureCfg("badsuppress"), lint.WallClock)
}

var (
	loaderOnce sync.Once
	loaderVal  *lint.Loader
	loaderErr  error
)

// sharedLoader returns one process-wide loader so the standard library is
// type-checked from source once, not once per test.
func sharedLoader(t *testing.T) *lint.Loader {
	t.Helper()
	loaderOnce.Do(func() {
		root, err := moduleRoot()
		if err != nil {
			loaderErr = err
			return
		}
		loaderVal, loaderErr = lint.NewLoader(root)
	})
	if loaderErr != nil {
		t.Fatal(loaderErr)
	}
	return loaderVal
}

func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
