package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// summary.go is the interprocedural layer: a per-function summary of which
// determinism hazards a call to that function can reach, propagated
// bottom-up over the module call graph. The per-package analyzers consult
// these summaries so a hazard buried N helpers deep is reported at the
// site where it becomes a contract violation (the map range, the
// deterministic-package call into unvetted code, the sim-proc body) with
// the full helper chain in the message.
//
// Propagation is cycle-safe: Go's import graph is acyclic, so packages
// fold in topological order and only in-package recursion needs a
// fixpoint, which iterates until the hazard sets stop growing. Summaries
// are cached per package, keyed by a Merkle hash of the package's file
// contents and its in-module dependencies' keys (cache.go), so repeat runs
// and CI skip the whole walk for unchanged subtrees.

// Hazard enumerates the facts a function summary can carry. The first
// three mirror their analyzers one-to-one; HazardEmit and HazardFloatAccum
// are only violations when reached from a map range (maporder, floatfold);
// HazardOSBlock is only a violation when reached from sim-proc context
// (vtblock).
type Hazard int

const (
	// HazardWallclock: reaches time.Now/Sleep/After/... (wallclock).
	HazardWallclock Hazard = iota
	// HazardGlobalRand: reaches a process-global math/rand function.
	HazardGlobalRand
	// HazardRawGo: spawns goroutines or performs channel operations.
	HazardRawGo
	// HazardEmit: writes ordered output (fmt print, Write*/Emit* methods,
	// emitter packages) or stores formatted text in call order.
	HazardEmit
	// HazardFloatAccum: accumulates floats into state that outlives the
	// call, so calling it per map key folds in random order.
	HazardFloatAccum
	// HazardOSBlock: blocks on the OS — file IO, sockets, raw syscalls,
	// or real sync primitives — instead of virtual time.
	HazardOSBlock
	numHazards
)

var hazardNames = [numHazards]string{
	"wallclock", "globalrand", "rawgo", "emit", "floataccum", "osblock",
}

// Name returns the stable identifier used in cache entries.
func (h Hazard) Name() string { return hazardNames[h] }

func hazardByName(s string) (Hazard, bool) {
	for i, n := range hazardNames {
		if n == s {
			return Hazard(i), true
		}
	}
	return 0, false
}

// FuncSummary records, per hazard, the call chain from the summarized
// function down to the primitive that grounds the hazard. A nil chain
// means the hazard is absent. Chains are representative (one witness per
// hazard), capped at chainMaxLen links.
type FuncSummary struct {
	Chains [numHazards][]string
}

// Has reports whether the summary carries the hazard.
func (s *FuncSummary) Has(h Hazard) bool { return s != nil && s.Chains[h] != nil }

// chainMaxLen bounds witness chains so recursion cycles and very deep
// towers stay readable; longer chains end with an ellipsis.
const chainMaxLen = 8

// Chain renders the witness for h as "f → g → time.Now".
func (s *FuncSummary) Chain(h Hazard) string {
	return strings.Join(s.Chains[h], " → ")
}

// Summaries is the whole-program summary table, keyed by
// types.Func.FullName so entries survive the cache round-trip and resolve
// across packages.
type Summaries struct {
	funcs map[string]*FuncSummary

	// CacheHits and CacheMisses count package-level cache outcomes for
	// the run, surfaced by detlint -v and asserted by the cache tests.
	CacheHits   int
	CacheMisses int
}

// Lookup returns the summary for a resolved function, or nil.
func (s *Summaries) Lookup(f *types.Func) *FuncSummary {
	if s == nil || f == nil {
		return nil
	}
	return s.funcs[f.FullName()]
}

// BuildSummaries folds hazard facts bottom-up over the universe of
// module-local packages. cache may be nil to disable caching.
func BuildSummaries(cfg *Config, universe []*Package, cache *summaryCache) *Summaries {
	sums := &Summaries{funcs: make(map[string]*FuncSummary)}
	keys := make(map[string]string) // pkg path -> merkle key
	for _, pkg := range topoPackages(universe) {
		var key string
		if cache != nil {
			key = cache.packageKey(cfg, pkg, keys)
			keys[pkg.PkgPath] = key
			if entry, ok := cache.load(key); ok {
				sums.CacheHits++
				for name, fs := range entry {
					sums.funcs[name] = fs
				}
				continue
			}
			sums.CacheMisses++
		}
		entry := summarizePackage(cfg, pkg, sums)
		for name, fs := range entry {
			sums.funcs[name] = fs
		}
		if cache != nil {
			cache.store(key, entry)
		}
	}
	return sums
}

// summarizePackage computes final summaries for one package, reading
// cross-package callees from sums (final, since packages fold in import
// order) and iterating in-package edges to a fixpoint.
func summarizePackage(cfg *Config, pkg *Package, sums *Summaries) map[string]*FuncSummary {
	ix := indexFuncs(pkg)
	local := make(map[string]*FuncSummary, len(ix.decls))
	edges := make(map[string][]*types.Func, len(ix.decls))

	for _, fd := range ix.decls {
		name := fd.obj.FullName()
		local[name] = localFacts(cfg, pkg, fd.decl)
		edges[name] = callees(pkg.Info, fd.decl.Body)
	}

	// Fixpoint: in-package recursion (including mutual recursion cycles)
	// stabilizes because hazard sets only grow and are bounded.
	for changed := true; changed; {
		changed = false
		for _, fd := range ix.decls {
			name := fd.obj.FullName()
			fs := local[name]
			for _, callee := range edges[name] {
				var cs *FuncSummary
				if c, ok := local[callee.FullName()]; ok {
					cs = c
				} else {
					cs = sums.funcs[callee.FullName()]
				}
				if cs == nil {
					continue
				}
				for h := Hazard(0); h < numHazards; h++ {
					if cs.Chains[h] == nil || fs.Chains[h] != nil {
						continue
					}
					fs.Chains[h] = extendChain(callee.Name(), cs.Chains[h])
					changed = true
				}
			}
		}
	}
	return local
}

// extendChain prepends a caller link, capping length with an ellipsis so
// recursion cycles produce finite witnesses.
func extendChain(link string, rest []string) []string {
	if len(rest) >= chainMaxLen {
		rest = append(rest[:chainMaxLen-1:chainMaxLen-1], "…")
	}
	out := make([]string, 0, len(rest)+1)
	out = append(out, link)
	return append(out, rest...)
}

// localFacts extracts the hazards a single function body grounds directly,
// with the primitive's name as the chain terminal.
func localFacts(cfg *Config, pkg *Package, fd *ast.FuncDecl) *FuncSummary {
	fs := &FuncSummary{}
	set := func(h Hazard, terminal string) {
		if fs.Chains[h] == nil {
			fs.Chains[h] = []string{terminal}
		}
	}
	info := pkg.Info
	formats, fieldAppend := false, false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			set(HazardRawGo, "go statement")
		case *ast.SendStmt:
			set(HazardRawGo, "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				set(HazardRawGo, "channel receive")
			}
		case *ast.SelectStmt:
			set(HazardRawGo, "select statement")
		case *ast.SelectorExpr:
			switch importedPackage(info, n.X) {
			case "time":
				if _, isFunc := info.Uses[n.Sel].(*types.Func); isFunc && wallClockFuncs[n.Sel.Name] {
					set(HazardWallclock, "time."+n.Sel.Name)
				}
			case "math/rand", "math/rand/v2":
				if _, isFunc := info.Uses[n.Sel].(*types.Func); isFunc && !randConstructors[n.Sel.Name] {
					set(HazardGlobalRand, "rand."+n.Sel.Name)
				}
			}
		case *ast.AssignStmt:
			if floatAccumulation(info, n, fd) {
				set(HazardFloatAccum, "float accumulation")
			}
		case *ast.CallExpr:
			if f := calleeFunc(info, n); f != nil && f.Pkg() != nil {
				path := f.Pkg().Path()
				switch {
				case path == "fmt" && fmtOutputFuncs[f.Name()]:
					set(HazardEmit, "fmt."+f.Name())
				case cfg.IsEmitter(path) && path != pkg.PkgPath:
					set(HazardEmit, f.Pkg().Name()+"."+f.Name())
				case path == "fmt" && (strings.HasPrefix(f.Name(), "Sprint") || f.Name() == "Errorf"):
					formats = true
				}
				// The kernel packages are exempt from grounding OSBlock:
				// they implement virtual time *with* real sync primitives
				// (the single-runnable handoff), so their exported API is
				// precisely the sanctioned way to block. Everything else
				// that touches the OS carries the fact outward.
				if term, ok := osBlockCall(f); ok && !cfg.IsKernel(pkg.PkgPath) {
					set(HazardOSBlock, term)
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if strings.HasPrefix(sel.Sel.Name, "Write") || strings.HasPrefix(sel.Sel.Name, "Emit") {
					set(HazardEmit, "."+sel.Sel.Name)
				}
			}
			if isAppend(info, n) && len(n.Args) > 0 {
				if _, ok := ast.Unparen(n.Args[0]).(*ast.SelectorExpr); ok {
					fieldAppend = true
				}
			}
		}
		return true
	})
	// The v.fail(...) pattern: rendering text and appending it to a field
	// stores the rendered strings in call order, which a map-range caller
	// turns into random order.
	if formats && fieldAppend {
		set(HazardEmit, "formats + appends to a field")
	}
	return fs
}

// floatAccumulation reports whether the assignment folds a float into
// storage that outlives the function body's current call frame locals —
// a field reached through a receiver/parameter, or a package variable.
// Calling such a function once per map key folds floats in random order.
func floatAccumulation(info *types.Info, as *ast.AssignStmt, fd *ast.FuncDecl) bool {
	if len(as.Lhs) != 1 {
		return false
	}
	lhs := ast.Unparen(as.Lhs[0])
	tv, ok := info.Types[lhs]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return false
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	case token.ASSIGN:
		bin, ok := ast.Unparen(as.Rhs[0]).(*ast.BinaryExpr)
		if !ok {
			return false
		}
		switch bin.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
		default:
			return false
		}
		lobj := exprObject(info, lhs)
		if lobj == nil || (exprObject(info, bin.X) != lobj && exprObject(info, bin.Y) != lobj) {
			return false
		}
	default:
		return false
	}
	// Only selector targets (x.field, pkg.Var) reach storage the caller
	// can observe across calls; plain locals (including named results)
	// stay frame-local and commute freely with call order.
	sel, ok := lhs.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	root := rootIdent(sel)
	if root == nil {
		return true // conservatively escaping (chained calls etc.)
	}
	obj := info.Uses[root]
	if obj == nil {
		return false
	}
	// Frame-local root (a local struct value) does not outlive the call
	// unless it is the receiver or a parameter, which alias caller state.
	if declaredWithin(obj, fd.Body.Pos(), fd.Body.End()) {
		return false
	}
	return true
}

// osBlockFuncs are package-level functions that block on the operating
// system: file and directory IO, socket setup, process execution, and raw
// syscalls. Inside a sim proc only virtual-time sleeps are legal — one
// os.ReadFile under a virtual-time measurement perturbs every latency
// number after it.
var osBlockFuncs = map[string]map[string]bool{
	"os": {
		"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
		"ReadFile": true, "WriteFile": true, "ReadDir": true, "MkdirTemp": true,
		"Mkdir": true, "MkdirAll": true, "Remove": true, "RemoveAll": true,
		"Rename": true, "Stat": true, "Lstat": true, "Truncate": true,
		"Pipe": true, "Chdir": true, "Symlink": true, "Link": true,
	},
	"net": {
		"Dial": true, "DialTimeout": true, "Listen": true, "ListenPacket": true,
		"LookupHost": true, "LookupAddr": true, "LookupIP": true,
	},
	"os/exec": {"Command": true, "CommandContext": true},
	"io/ioutil": {
		"ReadFile": true, "WriteFile": true, "ReadDir": true, "TempFile": true, "TempDir": true,
	},
}

// osBlockMethods are methods that block the calling goroutine for real —
// OS handles and the real sync package's waits. The sim package's own
// Mutex/Cond/Group are virtual-time lookalikes and do not match.
var osBlockMethods = map[string]bool{
	"(*os.File).Read": true, "(*os.File).Write": true, "(*os.File).Close": true,
	"(*os.File).Sync": true, "(*os.File).Seek": true, "(*os.File).ReadAt": true,
	"(*os.File).WriteAt": true, "(*os.File).WriteString": true,
	"(*sync.Mutex).Lock": true, "(*sync.RWMutex).Lock": true,
	"(*sync.RWMutex).RLock": true, "(*sync.WaitGroup).Wait": true,
	"(*sync.Cond).Wait": true, "(*sync.Once).Do": true,
	"(*os/exec.Cmd).Run": true, "(*os/exec.Cmd).Output": true,
	"(*os/exec.Cmd).CombinedOutput": true, "(*os/exec.Cmd).Wait": true,
}

// osBlockCall classifies a resolved callee as OS-blocking, returning the
// terminal description for the witness chain.
func osBlockCall(f *types.Func) (string, bool) {
	path := f.Pkg().Path()
	if path == "syscall" || strings.HasPrefix(path, "golang.org/x/sys/") {
		return "syscall." + f.Name(), true
	}
	if set, ok := osBlockFuncs[path]; ok && set[f.Name()] {
		return path + "." + f.Name(), true
	}
	if f.Type().(*types.Signature).Recv() != nil && osBlockMethods[f.FullName()] {
		return f.FullName(), true
	}
	return "", false
}

// reachable reports whether a call to f grounds hazard h somewhere down
// its helper chain, consulting both the direct primitive tables (for
// stdlib callees, which have no summaries) and the summary table.
func (s *Summaries) reachable(f *types.Func, h Hazard) (string, bool) {
	if fs := s.Lookup(f); fs.Has(h) {
		return fs.Chain(h), true
	}
	return "", false
}

// checkPropagated reports calls in deterministic code whose callee lives
// outside the contract (a module package not bound deterministic) but
// whose helper chain still grounds hazard h. Direct uses inside
// deterministic packages are the per-package analyzers' job; this closes
// the boundary-crossing gap where a deterministic package delegates to an
// unvetted helper tower. Callees inside deterministic packages are skipped
// on purpose: their bodies are flagged (or deliberately suppressed) at the
// declaration site, and re-reporting every caller would turn one reviewed
// exception into a diagnostic storm.
func checkPropagated(pass *Pass, h Hazard, what string) {
	if pass.Summaries == nil || !pass.Cfg.IsDeterministic(pass.PkgPath) {
		return
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeFunc(pass.Info, call)
			if callee == nil || callee.Pkg() == nil {
				return true
			}
			if pass.Cfg.IsDeterministic(callee.Pkg().Path()) {
				return true
			}
			if chain, ok := pass.Summaries.reachable(callee, h); ok {
				pass.Report(call.Pos(), "call to %s reaches %s (%s → %s); deterministic packages must not delegate to it",
					callee.Name(), what, callee.Name(), chain)
				return false
			}
			return true
		})
	}
}
