// Fixture for the globalrand analyzer: package-level math/rand and
// math/rand/v2 functions share process-global state and are violations;
// explicitly-seeded local generators (the raw material of internal/rng)
// and type references are fine.
package globalrand

import (
	"math/rand"

	randv2 "math/rand/v2"
)

func bad() {
	_ = rand.Int()                     // want `rand\.Int uses the process-global generator`
	_ = rand.Intn(10)                  // want `rand\.Intn uses the process-global generator`
	_ = rand.Float64()                 // want `rand\.Float64 uses the process-global generator`
	_ = rand.Perm(4)                   // want `rand\.Perm uses the process-global generator`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle uses the process-global generator`
}

func badV2() {
	_ = randv2.IntN(10)  // want `rand\.IntN uses the process-global generator`
	_ = randv2.Float64() // want `rand\.Float64 uses the process-global generator`
}

func good() float64 {
	r := rand.New(rand.NewSource(42)) // seeded local stream: deterministic
	z := rand.NewZipf(r, 1.1, 1.0, 100)
	_ = z.Uint64()
	var src rand.Source // type references are fine
	_ = src
	p := randv2.New(randv2.NewPCG(1, 2))
	return r.Float64() + p.Float64()
}

func allowed() {
	//detlint:allow globalrand(seeding the exempt stream home is tested elsewhere)
	_ = rand.Uint32()
}
