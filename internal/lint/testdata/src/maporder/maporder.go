// Fixture for the maporder analyzer: map iteration that emits output or
// escapes results in iteration order is a violation; the collect-then-sort
// idiom, order-insensitive map writes, and reasoned suppressions are not.
package maporder

import (
	"fmt"
	"sort"
	"strings"

	"cloudybench/internal/report"
)

func badPrint(m map[string]int) {
	for k, v := range m { // want `map iteration calls fmt\.Printf`
		fmt.Printf("%s=%d\n", k, v)
	}
}

func badEscape(m map[string]int) []string {
	var out []string
	for k := range m { // want `appends to out, which outlives the loop unsorted`
		out = append(out, k)
	}
	return out
}

func badWriter(m map[string]int, b *strings.Builder) {
	for k := range m { // want `map iteration calls \.WriteString`
		b.WriteString(k)
	}
}

func badEmitter(m map[string]int, t *report.Table) {
	for k := range m { // want `map iteration calls report\.AddRow`
		t.AddRow(k)
	}
}

type verdict struct {
	details []string
}

// fail is the one-level interprocedural case: it formats a message and
// appends it to a field, so calling it in map order stores rendered text
// in random order.
func (v *verdict) fail(format string, args ...any) {
	v.details = append(v.details, fmt.Sprintf(format, args...))
}

func badHelper(m map[string]int, v *verdict) {
	for k, n := range m { // want `calls fail, which emits or escapes in call order`
		if n < 0 {
			v.fail("negative count for %s", k)
		}
	}
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m { // exempt: keys are sorted before use
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func goodMapWrite(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { // writing a map is order-insensitive
		out[k] = v * 2
	}
	return out
}

func goodLoopLocal(m map[string][]int) int {
	total := 0
	for _, vs := range m { // loop-local append never leaves the iteration
		var evens []int
		for _, v := range vs {
			if v%2 == 0 {
				evens = append(evens, v)
			}
		}
		total += len(evens)
	}
	return total
}

func allowed(m map[string]int) {
	//detlint:allow maporder(debug dump on a panic path, never in a report)
	for k := range m {
		fmt.Println(k)
	}
}
