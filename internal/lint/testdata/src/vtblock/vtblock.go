// Package vtblock exercises the sim-proc OS-blocking rule. The fixture
// config registers vtblock.Proc as a proc type: any function or literal
// taking it runs under virtual time and must not touch the OS — directly,
// or through a helper tower (the HazardOSBlock summary).
package vtblock

import (
	"os"
	"sync"
)

// Proc stands in for the DES kernel's process handle.
type Proc struct{}

// Sleep is the fixture's virtual-time block; calling it is always legal.
func (p *Proc) Sleep(d int) {}

// Run is proc context: direct OS calls, real sync waits, and helper
// towers that reach the OS are all flagged; virtual sleeps and calls into
// other proc-context functions (checked at their own declarations) are
// not.
func Run(p *Proc) {
	p.Sleep(5)
	_, _ = os.ReadFile("x") // want `os\.ReadFile blocks on the OS inside sim-proc context`
	var mu sync.Mutex
	mu.Lock() // want `\(\*sync\.Mutex\)\.Lock blocks on the OS inside sim-proc context`
	persist() // want `call to persist reaches OS-blocking os\.Create \(persist → flush → os\.Create\) inside sim-proc context`
	compute()
	step(p)
}

// step is itself proc context, so Run's call to it is clean — but its own
// body is checked here.
func step(p *Proc) {
	_ = os.Remove("y") // want `os\.Remove blocks on the OS inside sim-proc context`
}

// closures with a proc parameter are proc context too.
var hook = func(p *Proc, path string) {
	_, _ = os.Stat(path) // want `os\.Stat blocks on the OS inside sim-proc context`
}

// blessed carries a reviewed exception (checkpoint artifacts are written
// outside the measured window), consumed by the diagnostic on its line.
func blessed(p *Proc) {
	_ = os.Mkdir("snap", 0o755) //detlint:allow vtblock(fixture: outside the measured window)
}

// persist → flush → os.Create is the helper tower; neither helper takes a
// Proc, so the hazard must travel by summary.
func persist() {
	flush()
}

func flush() {
	f, err := os.Create("out")
	if err == nil {
		f.Close()
	}
}

// compute is hazard-free; calling it from proc context is clean.
func compute() int {
	s := 0
	for i := 0; i < 4; i++ {
		s += i
	}
	return s
}
