// Fixture for the rawgo analyzer: goroutines, channels, select, and
// sync.WaitGroup are violations in deterministic packages; sync.Mutex and
// atomics are allowed, and a reasoned suppression documents the blessed
// worker-pool exception.
package rawgo

import (
	"sync"
	"sync/atomic"
)

func spin() {}

func badGo() {
	go spin() // want `bare go statement`
}

func badChan() {
	ch := make(chan int, 1) // want `channel type`
	ch <- 1                 // want `channel send`
	_ = <-ch                // want `channel receive`
	close(ch)               // want `close on a channel`
}

func badSelect(stop chan struct{}) { // want `channel type`
	select { // want `select statement`
	case <-stop: // want `channel receive`
	default:
	}
}

func badRange(events chan int) int { // want `channel type`
	n := 0
	for range events { // want `range over channel`
		n++
	}
	return n
}

func badWaitGroup() {
	var wg sync.WaitGroup // want `sync\.WaitGroup joins real goroutines; deterministic packages wait in virtual time \(sim\.Group\)`
	wg.Add(1)
	wg.Done()
	wg.Wait()
}

func goodSync() int64 {
	// Mutexes and atomics do not spawn or join real goroutines; they are
	// legitimate for guarding configuration state.
	var mu sync.Mutex
	var n atomic.Int64
	mu.Lock()
	n.Add(1)
	mu.Unlock()
	return n.Load()
}

func allowedPool() {
	//detlint:allow rawgo(bounded worker pool; results merged in declaration order)
	go spin()
}
