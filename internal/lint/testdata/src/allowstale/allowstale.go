// Package allowstale exercises suppression rot: an exception that still
// masks a live violation is honoured silently, one that masks nothing is
// itself an error (with a machine-applicable deletion).
package allowstale

import "time"

// live: the allow earns its keep — no diagnostic from either rule.
func live() int64 {
	return time.Now().UnixNano() //detlint:allow wallclock(fixture: reviewed wall-clock read)
}

// rotted: nothing on this line violates anything anymore.
func rotted() int {
	return 7 //detlint:allow wallclock(fixture: the violation moved away) // want `suppression //detlint:allow wallclock\(.*\) no longer suppresses any diagnostic`
}

// standalone rotted comment on its own line, the -fix deletion target:
//
//detlint:allow wallclock(fixture: stale standalone) // want `no longer suppresses any diagnostic`
func alsoClean() {}
