// Package hotalloc exercises the escape-analysis gate. The package must
// build standalone (the analyzer shells out to go build), so helpers are
// marked //go:noinline to pin the compiler's escape positions to their
// declaration sites instead of duplicating them at inlined call sites.
package hotalloc

// Box is big enough that the compiler never stack-promotes an escaping one.
type Box struct{ v [4]int }

var sink *Box

var coldSink []byte

// Hot returns a pointer to a local: the textbook escape, on the hot path.
//
//detlint:hotpath
func Hot() *Box {
	b := &Box{} // want `heap allocation on the hot path: .*escapes to heap.* in Hot \(//detlint:hotpath\)`
	return b
}

// HotClean allocates nothing; the gate must stay quiet.
//
//detlint:hotpath
func HotClean(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// HotCallee is clean itself, but its direct callee leaks — charged to the
// annotated root.
//
//detlint:hotpath
func HotCallee() {
	helper()
}

//go:noinline
func helper() {
	sink = &Box{} // want `heap allocation on the hot path: .*escapes to heap.* in helper \(direct callee of //detlint:hotpath HotCallee\)`
}

// HotCold exercises both escape hatches: a //detlint:coldpath callee is
// excluded wholesale, and panic arguments are exempt (a deterministic
// crash never runs in steady state).
//
//detlint:hotpath
func HotCold() {
	grow()
	if badState() {
		panic(&Box{})
	}
}

//go:noinline
//detlint:coldpath
func grow() {
	coldSink = make([]byte, 1024)
}

//go:noinline
func badState() bool { return false }

// HotAllowed carries a reviewed cold-branch exception on the allocating
// line; the allow is live, so allowstale stays quiet too.
//
//detlint:hotpath
func HotAllowed() {
	coldSink = make([]byte, 16) //detlint:allow hotalloc(fixture: cold growth path)
}
