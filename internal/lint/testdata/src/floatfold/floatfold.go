// Fixture for the floatfold analyzer: folding floats in map iteration
// order is a violation (float addition is not associative); integer folds,
// keyed per-entry accumulation, and folds over sorted keys are not.
package floatfold

import "sort"

func badSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `float accumulation \+= in map iteration order`
	}
	return sum
}

func badSpelledOut(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total = total + v // want `float accumulation in map iteration order`
	}
	return total
}

func badProduct(m map[string]float64) float64 {
	p := 1.0
	for _, v := range m {
		p *= v // want `float accumulation \*= in map iteration order`
	}
	return p
}

type agg struct {
	sum float64
}

func (a *agg) badField(m map[string]float64) {
	for _, v := range m {
		a.sum += v // want `float accumulation \+= in map iteration order`
	}
}

func goodInt(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v // integer addition commutes exactly
	}
	return n
}

func goodSortedFold(m map[string]float64) float64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var sum float64
	for _, k := range keys {
		sum += m[k]
	}
	return sum
}

type bucket struct {
	total float64
}

func goodKeyed(m map[string]float64) map[string]*bucket {
	out := make(map[string]*bucket)
	for k, v := range m {
		b := out[k]
		if b == nil {
			b = &bucket{}
			out[k] = b
		}
		b.total += v // keyed per-entry accumulation, not a fold
	}
	return out
}

func allowed(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		//detlint:allow floatfold(order error is below report precision here)
		sum += v
	}
	return sum
}
