// Package chain exercises interprocedural hazard propagation: the
// cross-package boundary rule (a deterministic package delegating into an
// unvetted helper tower) and summary chains through in-package recursion
// cycles. The fixture is configured with this package deterministic and
// chainhelper not.
package chain

import "chainhelper"

// measure delegates timing to a tower whose third level reads the wall
// clock; the diagnostic lands here, at the boundary crossing, with the
// full witness chain.
func measure() int64 {
	return chainhelper.Stamp() // want `call to Stamp reaches the wall clock \(Stamp → mid → leaf → time\.Now\); deterministic packages must not delegate to it`
}

// harmless delegates to a hazard-free tower: no diagnostic.
func harmless() int {
	return chainhelper.Pure()
}

// suppressed carries a reviewed exception; the allow is live (consumed by
// the boundary diagnostic), so allowstale stays quiet too.
func suppressed() int64 {
	return chainhelper.Stamp() //detlint:allow wallclock(fixture: reviewed boundary crossing)
}
