package chain

import "fmt"

// render ranges a map and hands each key to a mutually recursive pair
// whose deeper half prints: the summary fixpoint must converge on the
// cycle and surface the emit hazard at the range site.
func render(m map[string]int) {
	for k := range m { // want `map iteration calls ping, which emits or escapes in call order \(ping → pong → fmt\.Println\)`
		ping(k, 2)
	}
}

func ping(k string, n int) {
	if n == 0 {
		return
	}
	pong(k, n-1)
}

func pong(k string, n int) {
	fmt.Println(k)
	ping(k, n-1)
}
