// Fixture for the wallclock analyzer: wall-clock reads are violations,
// duration arithmetic and type uses are not, aliased imports are still
// caught, and a reasoned suppression silences a site.
package wallclock

import (
	"time"

	tm "time"
)

func bad() {
	_ = time.Now()                   // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond)     // want `time\.Sleep reads the wall clock`
	_ = time.Since(time.Time{})      // want `time\.Since reads the wall clock`
	_ = time.After(time.Second)      // want `time\.After reads the wall clock`
	_ = time.NewTimer(time.Second)   // want `time\.NewTimer reads the wall clock`
	t := time.NewTicker(time.Second) // want `time\.NewTicker reads the wall clock`
	t.Stop()
}

func aliased() {
	_ = tm.Now() // want `time\.Now reads the wall clock`
}

func good() time.Duration {
	// Duration values, constants, and parsing never touch the machine
	// clock; the testbed measures virtual durations with them.
	d, _ := time.ParseDuration("3ms")
	var at time.Time
	_ = at
	return d + 2*time.Millisecond
}

func allowed() {
	//detlint:allow wallclock(operator-facing progress logging, never in a result)
	_ = time.Now()
}
