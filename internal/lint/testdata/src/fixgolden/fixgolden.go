// Package fixgolden is the -fix round-trip input: the test copies it to a
// temp dir, applies detlint's machine fixes, and compares the result to
// fixgolden.golden byte-for-byte. Applying fixes a second time must be a
// no-op, and the output must be gofmt-clean.
package fixgolden

import (
	"fmt"
)

// Dump prints totals in map order: the maporder fix rewrites the loop to
// collect-then-sort and adds the slices import.
func Dump(totals map[string]int) {
	for name, n := range totals {
		fmt.Println(name, n)
	}
}

// Keys escapes iteration order through the returned slice; the same
// rewrite applies to a key-only range.
func Keys(m map[int]string) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	return out
}

// The suppression below rotted (its loop was rewritten long ago); -fix
// deletes the whole line.
//
//detlint:allow maporder(stale: the loop this guarded is gone)
func Quiet() {}
