// Fixture for globalrand's exemption: a package configured as the blessed
// randomness home (internal/rng in the real tree) may use math/rand
// freely — no want comments anywhere.
package globalrand_exempt

import "math/rand"

func seed(n int) int {
	return rand.Intn(n)
}
