// Fixture for suppression validation: a suppression must name a known
// rule and carry a reason, or it is reported instead of honoured.
package badsuppress

import "time"

func missingReason() {
	//detlint:allow wallclock() // want `suppression for wallclock needs a reason`
	_ = time.Now() // want `time\.Now reads the wall clock`
}

func unknownRule() {
	//detlint:allow clockwall(typo in the rule name) // want `suppression names unknown rule "clockwall"`
	_ = time.Now() // want `time\.Now reads the wall clock`
}

func malformed() {
	//detlint:allow wallclock no parens // want `malformed suppression`
	_ = time.Now() // want `time\.Now reads the wall clock`
}
