// Package chainhelper is the unvetted helper tower for the cross-package
// chain fixture: it is NOT configured deterministic, so nothing here is
// flagged directly — the violation is the deterministic caller in the
// chain fixture delegating to it. Stamp grounds the wall clock three
// helpers deep to exercise chain propagation across the package boundary.
package chainhelper

import "time"

// Stamp is the tower's entry point: Stamp → mid → leaf → time.Now.
func Stamp() int64 {
	return mid()
}

func mid() int64 {
	return leaf()
}

func leaf() int64 {
	return time.Now().UnixNano()
}

// Pure is hazard-free at every depth; calling it from deterministic code
// must produce nothing.
func Pure() int {
	return pureMid()
}

func pureMid() int {
	return 42
}
