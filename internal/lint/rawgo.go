package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// RawGo forbids ad-hoc concurrency in deterministic packages: bare go
// statements, channel types and operations (send, receive, select, close,
// range-over-channel), and sync.WaitGroup. The DES kernel (internal/sim)
// owns real goroutines and turns them back into a deterministic
// single-runnable discipline; anything spawned outside it races the
// kernel's schedule and is exactly how the byte-identical report guarantee
// dies. The kernel package itself is blessed in the config; the
// experiments cell pool documents its exception with //detlint:allow.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc: "forbid go statements, channels, and sync.WaitGroup in deterministic packages " +
		"outside the sim kernel; concurrency belongs to the DES scheduler",
	Run: runRawGo,
}

func runRawGo(pass *Pass) error {
	if !pass.Cfg.IsDeterministic(pass.PkgPath) || pass.Cfg.IsKernel(pass.PkgPath) {
		return nil
	}
	// Boundary crossings: a deterministic package delegating to an
	// unvetted module helper whose chain spawns goroutines or moves
	// values through channels.
	checkPropagated(pass, HazardRawGo, "raw concurrency")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Report(n.Pos(), "bare go statement; deterministic packages schedule work through the sim kernel (sim.Sim.Go)")
			case *ast.SendStmt:
				pass.Report(n.Pos(), "channel send; use the sim kernel's queues and wakeups instead of raw channels")
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Report(n.Pos(), "channel receive; use the sim kernel's queues and wakeups instead of raw channels")
				}
			case *ast.SelectStmt:
				pass.Report(n.Pos(), "select statement; channel multiplexing is nondeterministic — use sim events")
			case *ast.ChanType:
				pass.Report(n.Pos(), "channel type; deterministic packages communicate through sim queues, not channels")
			case *ast.RangeStmt:
				if tv, ok := pass.Info.Types[n.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						pass.Report(n.Pos(), "range over channel; drain sim queues in virtual time instead")
					}
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
					if b, ok := pass.Info.Uses[id].(*types.Builtin); ok && b.Name() == "close" {
						pass.Report(n.Pos(), "close on a channel; deterministic packages do not own channels")
					}
				}
			case *ast.SelectorExpr:
				if importedPackage(pass.Info, n.X) == "sync" && n.Sel.Name == "WaitGroup" {
					pass.Report(n.Pos(), "sync.WaitGroup joins real goroutines; deterministic packages wait in virtual time (sim.Group)")
				}
			}
			return true
		})
	}
	return nil
}
