// Package lint implements detlint: a suite of static analyzers that
// mechanically enforce the testbed's determinism contract. The contract
// exists because every score in the paper reproduction — PERFECT, O-Score,
// the golden report files — is only comparable across runs if a run is a
// pure function of its seed. One stray time.Now(), one global math/rand
// call, or one map iteration in a render path silently breaks the
// byte-identical guarantee that PR 3 established for any -parallel level
// and any GOMAXPROCS.
//
// The suite mirrors the shape of golang.org/x/tools/go/analysis (Analyzer,
// Pass, Diagnostic) but is self-contained: the module has no external
// dependencies and the analyzers only need parsed, type-checked packages,
// which the stdlib go/* packages provide. Should the module ever vendor
// x/tools, each analyzer's Run is a one-line adaptation away.
//
// Seven rules make up the contract (see DESIGN.md "The determinism
// contract" and §16):
//
//	wallclock  — no wall-clock time in deterministic packages
//	globalrand — no global math/rand state; randomness flows through rng
//	maporder   — no map iteration that emits output or escapes results
//	rawgo      — no ad-hoc goroutines/channels outside the sim kernel
//	floatfold  — no float accumulation in map iteration order
//	vtblock    — no OS-blocking calls (file IO, sockets, real sync waits)
//	             inside sim-proc context; only virtual time may block
//	hotalloc   — no heap allocation in //detlint:hotpath functions,
//	             checked against the compiler's escape analysis
//
// The first six see through helper chains: per-function hazard summaries
// propagate bottom-up over the module call graph (summary.go), so a
// time.Now five helpers deep is reported at the deterministic call site
// with the full chain in the message.
//
// Exceptions are declared in place with a suppression comment:
//
//	//detlint:allow rule(reason)
//
// on the flagged line or the line above it. The reason is mandatory, so
// every exception is visible and greppable in review, and a suppression
// that no longer suppresses anything is itself reported (allowstale) so
// the exception inventory cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named determinism rule. It mirrors
// golang.org/x/tools/go/analysis.Analyzer's shape so the rules read like
// standard vet checks.
type Analyzer struct {
	// Name is the rule identifier used in diagnostics and in
	// //detlint:allow comments. Lowercase, no spaces.
	Name string
	// Doc is a one-paragraph description of the rule and its rationale.
	Doc string
	// Run inspects one package and reports violations via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// PkgPath is the package's import path (e.g. cloudybench/internal/sim).
	PkgPath string
	// Cfg is the shared determinism configuration: which packages are
	// deterministic, which package is the blessed randomness home, which
	// package is the concurrency kernel.
	Cfg *Config
	// Summaries is the whole-program hazard table (summary.go); nil when
	// an analyzer is run standalone without the interprocedural layer.
	Summaries *Summaries

	report func(Diagnostic)
}

// Report records one violation.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportFix records one violation carrying a machine-applicable rewrite.
func (p *Pass) ReportFix(pos token.Pos, fix *Fix, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// Diagnostic is one reported violation, resolved to a file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fix, when non-nil, is a machine-applicable rewrite that resolves
	// the diagnostic (applied by detlint -fix, see fix.go).
	Fix *Fix
}

// String renders the diagnostic in the familiar vet format.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// sortDiagnostics orders diagnostics by (file, line, column, analyzer) so
// output is stable regardless of analyzer or package scheduling.
func sortDiagnostics(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// Analyzers returns the full per-package determinism suite in reporting
// order. HotAlloc is not in the list: it shells out to the compiler and is
// driven separately (RunHotAlloc) behind the -hotalloc flag. AllowStale is
// not in the list either: its diagnostics come from the runner's own
// suppression bookkeeping, not a package pass.
func Analyzers() []*Analyzer {
	return []*Analyzer{WallClock, GlobalRand, MapOrder, RawGo, FloatFold, VTBlock}
}

// AllRules returns every rule a //detlint:allow comment may legally name,
// including the specially-driven ones.
func AllRules() []*Analyzer {
	return append(Analyzers(), HotAlloc, AllowStale)
}

// knownRuleNames is the suppression-parsing vocabulary: every rule name
// that exists, independent of which analyzers a particular run enables. A
// run with a subset of analyzers must still parse (and ignore) the other
// rules' suppressions rather than call them unknown.
func knownRuleNames() map[string]bool {
	out := make(map[string]bool)
	for _, a := range AllRules() {
		out[a.Name] = true
	}
	return out
}

// importedPackage resolves an expression to the import path of the package
// it names, or "" if the expression is not a package qualifier. Respects
// aliases and local shadowing because it goes through the type checker's
// Uses map rather than matching identifier text.
func importedPackage(info *types.Info, expr ast.Expr) string {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}

// declaredWithin reports whether obj's declaration lies inside [lo, hi] —
// used to separate loop-local state from state that escapes the loop.
func declaredWithin(obj types.Object, lo, hi token.Pos) bool {
	return obj != nil && obj.Pos() >= lo && obj.Pos() <= hi
}
