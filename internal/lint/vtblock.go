package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// VTBlock forbids OS-blocking calls inside sim-proc context: functions
// that take the DES kernel's *sim.Proc run under virtual time, where every
// latency the testbed reports is an accounting entry, not a wall-clock
// wait. A real block — file IO, a socket, a raw syscall, a sync.Mutex
// handed to the scheduler — stalls the kernel's single-runnable discipline
// for a host-dependent duration, which is exactly the measurement
// perturbation the virtual clock exists to eliminate. Only virtual-time
// sleeps (Proc.Sleep, sim.Mutex/Cond/Group) are legal; artifact writing
// belongs after Run returns, outside proc context.
//
// The rule sees through helper chains via the HazardOSBlock summary, so a
// proc handing work to a plain helper that os.Create()s three levels down
// is reported at the hand-off.
var VTBlock = &Analyzer{
	Name: "vtblock",
	Doc: "forbid OS-blocking calls (file IO, sockets, syscalls, real sync waits) in " +
		"sim-proc context, including through helper chains; block in virtual time instead",
	Run: runVTBlock,
}

func runVTBlock(pass *Pass) error {
	if !pass.Cfg.IsDeterministic(pass.PkgPath) || pass.Cfg.IsKernel(pass.PkgPath) {
		return nil
	}
	reported := make(map[token.Pos]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil || !procContextSig(pass, funcDeclSig(pass, n)) {
					return true
				}
				body = n.Body
			case *ast.FuncLit:
				if !procContextSig(pass, pass.Info.Types[n].Type) {
					return true
				}
				body = n.Body
			default:
				return true
			}
			checkProcBody(pass, body, reported)
			return true
		})
	}
	return nil
}

// funcDeclSig returns the declared function's type, or nil.
func funcDeclSig(pass *Pass, fd *ast.FuncDecl) types.Type {
	if obj, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
		return obj.Type()
	}
	return nil
}

// procContextSig reports whether the signature carries a parameter of a
// configured proc type — the repo convention for "this code runs inside a
// sim proc under virtual time".
func procContextSig(pass *Pass, t types.Type) bool {
	sig, ok := t.(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isProcType(pass.Cfg, sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// isProcType matches T or *T against Config.ProcTypes entries of the form
// "pkg/path.TypeName".
func isProcType(cfg *Config, t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	full := obj.Pkg().Path() + "." + obj.Name()
	for _, p := range cfg.ProcTypes {
		if p == full {
			return true
		}
	}
	return false
}

// checkProcBody reports OS-blocking calls in one proc-context body, both
// direct primitives and helpers whose summary chains reach one. Helpers
// that are themselves proc-context are skipped: their own bodies are
// checked (and suppressed, if blessed) at the declaration.
func checkProcBody(pass *Pass, body *ast.BlockStmt, reported map[token.Pos]bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		f := calleeFunc(pass.Info, call)
		if f == nil || f.Pkg() == nil || reported[call.Pos()] {
			return true
		}
		if term, ok := osBlockCall(f); ok {
			reported[call.Pos()] = true
			pass.Report(call.Pos(),
				"%s blocks on the OS inside sim-proc context; only virtual time may block here (Proc.Sleep, sim sync)",
				term)
			return true
		}
		if procContextSig(pass, f.Type()) {
			return true
		}
		if s := pass.Summaries.Lookup(f); s.Has(HazardOSBlock) {
			reported[call.Pos()] = true
			pass.Report(call.Pos(),
				"call to %s reaches OS-blocking %s (%s → %s) inside sim-proc context; only virtual time may block here",
				f.Name(), lastLink(s.Chains[HazardOSBlock]), f.Name(), s.Chain(HazardOSBlock))
		}
		return true
	})
}

// lastLink returns the terminal of a witness chain.
func lastLink(chain []string) string {
	if len(chain) == 0 {
		return "?"
	}
	return chain[len(chain)-1]
}
