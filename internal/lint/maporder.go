package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder flags range statements over maps whose body makes iteration
// order observable: writing output (fmt print functions, Write*/Emit*
// methods, calls into the report/obs emitter packages), appending to a
// slice that outlives the loop without a subsequent sort, or calling a
// helper whose chain — arbitrarily deep, across packages — does one of
// those things (the interprocedural HazardEmit summary). Go randomizes map
// iteration order per range, so any of these bakes nondeterminism into
// rendered bytes. The fix is the repo's collect-then-sort idiom — which
// detlint -fix applies mechanically when the loop shape allows — and sites
// where order provably cannot matter carry //detlint:allow maporder(reason).
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration that emits output or escapes results in iteration order, " +
		"including through helper chains; sort keys first (collect-then-sort, " +
		"machine-applicable via -fix) or suppress with a reason",
	Run: runMapOrder,
}

// fmtOutputFuncs are the fmt functions that produce ordered output as a
// side effect. Sprint* build values and are only hazardous if the result
// escapes, which the append rule already covers.
var fmtOutputFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMapOrder(pass *Pass) error {
	if !pass.Cfg.IsDeterministic(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkMapRanges(pass, fd.Body, f)
		}
	}
	return nil
}

// calleeFunc resolves a call expression to the function object it invokes,
// or nil for builtins, closures bound to variables, and indirect calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isAppend reports whether call is the append builtin.
func isAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// directHazard classifies a call that makes ordering observable by itself:
// fmt output, a Write*/Emit* method, or a call into an emitter package.
// Returns a short description or "".
func directHazard(pass *Pass, call *ast.CallExpr) string {
	if f := calleeFunc(pass.Info, call); f != nil && f.Pkg() != nil {
		switch {
		case f.Pkg().Path() == "fmt" && fmtOutputFuncs[f.Name()]:
			return "fmt." + f.Name()
		case pass.Cfg.IsEmitter(f.Pkg().Path()) && f.Pkg().Path() != pass.PkgPath:
			return f.Pkg().Name() + "." + f.Name()
		}
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if strings.HasPrefix(sel.Sel.Name, "Write") || strings.HasPrefix(sel.Sel.Name, "Emit") {
			return "." + sel.Sel.Name
		}
	}
	return ""
}

// appendTarget returns the object a range-body append accumulates into, or
// nil if the call is not an append or the destination cannot be resolved.
func appendTarget(info *types.Info, call *ast.CallExpr) types.Object {
	if !isAppend(info, call) || len(call.Args) == 0 {
		return nil
	}
	switch dst := ast.Unparen(call.Args[0]).(type) {
	case *ast.Ident:
		return info.Uses[dst]
	case *ast.SelectorExpr:
		return info.Uses[dst.Sel]
	}
	return nil
}

// checkMapRanges walks one function body, finds every range over a map,
// and reports the ones whose body makes iteration order observable.
// Diagnostics carry the collect-then-sort rewrite (applied by -fix) when
// the loop's shape provably permits it.
func checkMapRanges(pass *Pass, body *ast.BlockStmt, file *ast.File) {
	// sortedAfter(obj, pos): a sort/slices call mentioning obj at a
	// position after pos — the second half of collect-then-sort.
	sortedAfter := func(obj types.Object, pos ast.Node) bool {
		found := false
		ast.Inspect(body, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || call.Pos() < pos.End() {
				return true
			}
			f := calleeFunc(pass.Info, call)
			if f == nil || f.Pkg() == nil || (f.Pkg().Path() != "sort" && f.Pkg().Path() != "slices") {
				return true
			}
			for _, arg := range call.Args {
				ast.Inspect(arg, func(a ast.Node) bool {
					if id, ok := a.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
						found = true
					}
					return !found
				})
			}
			return !found
		})
		return found
	}

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.Info.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}

		var (
			hazard  string
			escapes []types.Object
		)
		ast.Inspect(rng.Body, func(bn ast.Node) bool {
			if hazard != "" {
				return false
			}
			call, ok := bn.(*ast.CallExpr)
			if !ok {
				return true
			}
			if h := directHazard(pass, call); h != "" {
				hazard = "calls " + h
				return false
			}
			if f := calleeFunc(pass.Info, call); f != nil {
				if s := pass.Summaries.Lookup(f); s.Has(HazardEmit) {
					hazard = "calls " + f.Name() + ", which emits or escapes in call order (" +
						f.Name() + " → " + s.Chain(HazardEmit) + ")"
					return false
				}
			}
			if obj := appendTarget(pass.Info, call); obj != nil && !declaredWithin(obj, rng.Pos(), rng.End()) {
				escapes = append(escapes, obj)
			}
			return true
		})

		switch {
		case hazard != "":
			pass.ReportFix(rng.Pos(), buildMapOrderFix(pass, rng, body, file),
				"map iteration %s; map order is random per range — sort the keys first", hazard)
		case len(escapes) > 0:
			for _, obj := range escapes {
				if !sortedAfter(obj, rng) {
					pass.ReportFix(rng.Pos(), buildMapOrderFix(pass, rng, body, file),
						"map iteration appends to %s, which outlives the loop unsorted; sort it before use (collect-then-sort)",
						obj.Name())
					break
				}
			}
		}
		return true
	})
}
