package lint

import (
	"go/ast"
	"go/types"
)

// randConstructors are the math/rand and math/rand/v2 functions that build
// an explicitly-seeded local generator. They are the raw material
// internal/rng is made of; everything else on the package surface reads or
// mutates the process-global generator, whose state is shared across every
// caller in the binary and therefore depends on execution interleaving.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true, // math/rand/v2
	"NewChaCha8": true, // math/rand/v2
}

// GlobalRand forbids the package-level math/rand convenience functions
// (rand.Intn, rand.Float64, rand.Shuffle, ...) outside internal/rng. All
// workload randomness flows through seeded rng streams so a run replays
// from its seed; the global generator is invisible shared state that any
// other call site can perturb.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc: "forbid package-level math/rand and math/rand/v2 functions outside internal/rng; " +
		"all randomness flows through seeded rng streams",
	Run: runGlobalRand,
}

func runGlobalRand(pass *Pass) error {
	if !pass.Cfg.IsDeterministic(pass.PkgPath) || pass.Cfg.IsRandExempt(pass.PkgPath) {
		return nil
	}
	// Boundary crossings: a deterministic package delegating to an
	// unvetted module helper whose chain touches the global generator.
	checkPropagated(pass, HazardGlobalRand, "the process-global generator")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkg := importedPackage(pass.Info, sel.X)
			if pkg != "math/rand" && pkg != "math/rand/v2" {
				return true
			}
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			if randConstructors[sel.Sel.Name] {
				return true
			}
			pass.Report(sel.Pos(),
				"rand.%s uses the process-global generator; draw from a seeded internal/rng stream instead",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}
