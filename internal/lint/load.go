package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	PkgPath string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// Loader parses and type-checks module packages without any tooling
// dependency: module-local imports are resolved by walking the module tree
// and standard-library imports are type-checked from GOROOT source via the
// stdlib source importer. The module has no third-party dependencies, so
// these two roots cover every import.
type Loader struct {
	Fset       *token.FileSet
	ModuleRoot string
	ModulePath string

	std     types.ImporterFrom
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader returns a loader rooted at the module directory. The module
// path is read from go.mod.
func NewLoader(moduleRoot string) (*Loader, error) {
	data, err := os.ReadFile(filepath.Join(moduleRoot, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: reading go.mod: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module directive in %s/go.mod", moduleRoot)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModuleRoot: moduleRoot,
		ModulePath: modPath,
		std:        importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
		pkgs:       make(map[string]*Package),
		loading:    make(map[string]bool),
	}, nil
}

// Load resolves the given patterns (module-relative, "./..." wildcards
// supported, e.g. "./...", "./internal/...", "./cmd/detlint") and returns
// the matched packages, parsed and type-checked, sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make(map[string]bool)
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		if pat == "" || pat == "." {
			pat = "..."
		}
		if sub, ok := strings.CutSuffix(pat, "..."); ok {
			root := filepath.Join(l.ModuleRoot, filepath.FromSlash(strings.TrimSuffix(sub, "/")))
			if err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if path != root && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(path) {
					dirs[path] = true
				}
				return nil
			}); err != nil {
				return nil, fmt.Errorf("lint: walking %s: %w", pat, err)
			}
			continue
		}
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(pat))
		if !hasGoFiles(dir) {
			return nil, fmt.Errorf("lint: no Go files in %s", pat)
		}
		dirs[dir] = true
	}

	if len(dirs) == 0 {
		// A pattern that matches nothing must be loud: "CLEAN (0 packages)"
		// from a typo'd path is a green CI step that checked nothing.
		return nil, fmt.Errorf("lint: patterns %v matched no packages under %s", patterns, l.ModuleRoot)
	}

	var out []*Package
	for dir := range dirs {
		rel, err := filepath.Rel(l.ModuleRoot, dir)
		if err != nil {
			return nil, err
		}
		pkgPath := l.ModulePath
		if rel != "." {
			pkgPath = l.ModulePath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.loadPackage(pkgPath, dir)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses and type-checks a single directory outside the module
// layout under a synthetic import path — fixture packages in testdata.
func (l *Loader) LoadDir(dir, pkgPath string) (*Package, error) {
	return l.loadPackage(pkgPath, dir)
}

// Loaded returns every module-local package this loader has parsed so far —
// the requested packages plus their in-module dependencies — sorted by
// import path. This is the universe the interprocedural summaries fold
// over: analyzing ./internal/engine still sees hazards grounded three
// helpers deep in ./internal/storage.
func (l *Loader) Loaded() []*Package {
	out := make([]*Package, 0, len(l.pkgs))
	for _, p := range l.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

func (l *Loader) loadPackage(pkgPath, dir string) (*Package, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %s: %w", pkgPath, err)
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: parsing %s: %w", name, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	sort.Slice(files, func(i, j int) bool {
		return l.Fset.Position(files[i].Pos()).Filename < l.Fset.Position(files[j].Pos()).Filename
	})

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	p := &Package{PkgPath: pkgPath, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.pkgs[pkgPath] = p
	return p, nil
}

// Import implements types.Importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, l.ModuleRoot, 0)
}

// ImportFrom implements types.ImporterFrom: module-local packages load
// recursively from the module tree; everything else is standard library,
// type-checked from GOROOT source.
func (l *Loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	// Already-loaded packages resolve by their registered path first — this
	// is how fixture packages loaded via LoadDir under synthetic import
	// paths can import one another (the cross-package chain fixtures).
	if p, ok := l.pkgs[path]; ok {
		return p.Types, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		dir := filepath.Join(l.ModuleRoot, filepath.FromSlash(rel))
		p, err := l.loadPackage(path, dir)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
