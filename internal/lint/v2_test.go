package lint_test

import (
	"strings"
	"testing"

	"cloudybench/internal/lint"
	"cloudybench/internal/lint/linttest"
)

// TestChainPropagation is the interprocedural anchor: a deterministic
// package delegating to an unvetted helper tower is flagged at the
// boundary call with the full witness chain — three helpers deep, across
// the package boundary (chain → chainhelper: Stamp → mid → leaf →
// time.Now), and through an in-package mutual-recursion cycle whose
// deeper half emits.
func TestChainPropagation(t *testing.T) {
	linttest.RunWith(t, "chain", fixtureCfg("chain"), lint.Options{NoCache: true},
		[]string{"chainhelper"}, lint.WallClock, lint.MapOrder)
}

// TestVTBlock covers the sim-proc OS-blocking rule: direct primitives,
// real sync waits, helper towers reaching the OS by summary, closures
// with proc parameters, the proc-context-callee skip, and a reviewed
// allow.
func TestVTBlock(t *testing.T) {
	cfg := fixtureCfg("vtblock")
	cfg.ProcTypes = []string{"vtblock.Proc"}
	linttest.Run(t, "vtblock", cfg, lint.VTBlock)
}

// TestAllowStale covers suppression rot: a live allow is honoured
// silently, a rotted one (trailing or standalone) is itself reported.
func TestAllowStale(t *testing.T) {
	linttest.Run(t, "allowstale", fixtureCfg("allowstale"), lint.WallClock)
}

// TestHotAlloc drives the compiler's escape analysis over the annotated
// fixture: escapes in hotpath functions and their direct callees are
// reported, coldpath callees and panic arguments are exempt, and a
// reviewed allow on the allocating line is honoured.
func TestHotAlloc(t *testing.T) {
	if testing.Short() {
		t.Skip("shells out to go build")
	}
	linttest.RunWith(t, "hotalloc", fixtureCfg("hotalloc"), lint.Options{HotAlloc: true}, nil)
}

// TestRuleRegistry pins the rule inventory: Analyzers is what a plain run
// executes, AllRules adds the runner-driven rules (hotalloc, allowstale)
// for -rules listings and suppression parsing.
func TestRuleRegistry(t *testing.T) {
	plain := make(map[string]bool)
	for _, a := range lint.Analyzers() {
		plain[a.Name] = true
	}
	for _, name := range []string{"wallclock", "globalrand", "maporder", "rawgo", "floatfold", "vtblock"} {
		if !plain[name] {
			t.Errorf("Analyzers() lost rule %s", name)
		}
	}
	all := make(map[string]bool)
	for _, a := range lint.AllRules() {
		all[a.Name] = true
	}
	for _, name := range []string{"hotalloc", "allowstale"} {
		if !all[name] {
			t.Errorf("AllRules() lost runner-driven rule %s", name)
		}
		if plain[name] {
			t.Errorf("rule %s must not be in Analyzers() (it has no per-package Run)", name)
		}
	}
}

// TestChainMessageShape pins the witness-chain rendering end to end: load
// the cross-package fixture and assert the exact chain text, so a
// refactor cannot silently truncate chains to one level.
func TestChainMessageShape(t *testing.T) {
	loader := sharedLoader(t)
	helper, err := loader.LoadDir("testdata/src/chainhelper", "chainhelper")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir("testdata/src/chain", "chain")
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunOpts(fixtureCfg("chain"), []*lint.Analyzer{lint.WallClock},
		[]*lint.Package{pkg}, lint.Options{NoCache: true, Universe: []*lint.Package{helper, pkg}})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, d := range diags {
		if strings.Contains(d.Message, "Stamp → mid → leaf → time.Now") {
			found = true
		}
	}
	if !found {
		t.Errorf("no diagnostic carried the full 3-level witness chain; got %v", diags)
	}
}
