package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"cloudybench/internal/lint"
)

// chainDiags runs the wallclock analyzer over the cross-package chain
// fixture with the summary cache rooted at cacheDir, returning the
// diagnostics and the cache counters. Each call uses a fresh loader, so
// nothing is shared between runs except the cache directory.
func chainDiags(t *testing.T, cacheDir string) ([]lint.Diagnostic, *lint.Summaries) {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	helper, err := loader.LoadDir(filepath.Join("testdata", "src", "chainhelper"), "chainhelper")
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join("testdata", "src", "chain"), "chain")
	if err != nil {
		t.Fatal(err)
	}
	var sums *lint.Summaries
	diags, err := lint.RunOpts(fixtureCfg("chain"), []*lint.Analyzer{lint.WallClock},
		[]*lint.Package{pkg}, lint.Options{
			CacheDir:     cacheDir,
			Universe:     []*lint.Package{helper, pkg},
			SummariesOut: &sums,
		})
	if err != nil {
		t.Fatal(err)
	}
	return diags, sums
}

// TestSummaryCache proves the cache is an accelerator, never an oracle:
// a cold run misses and computes, a warm run hits every package, and both
// produce byte-identical diagnostics (witness chains survive the JSON
// round-trip). A corrupted entry silently degrades to a miss.
func TestSummaryCache(t *testing.T) {
	cacheDir := t.TempDir()

	cold, coldSums := chainDiags(t, cacheDir)
	if coldSums.CacheHits != 0 || coldSums.CacheMisses != 2 {
		t.Fatalf("cold run: %d hits, %d misses; want 0 and 2", coldSums.CacheHits, coldSums.CacheMisses)
	}
	if len(cold) == 0 {
		t.Fatal("chain fixture produced no diagnostics")
	}

	warm, warmSums := chainDiags(t, cacheDir)
	if warmSums.CacheHits != 2 || warmSums.CacheMisses != 0 {
		t.Fatalf("warm run: %d hits, %d misses; want 2 and 0", warmSums.CacheHits, warmSums.CacheMisses)
	}
	if len(warm) != len(cold) {
		t.Fatalf("warm run diagnostics diverge: %d vs %d", len(warm), len(cold))
	}
	for i := range warm {
		if warm[i].String() != cold[i].String() {
			t.Errorf("diagnostic %d diverges:\ncold: %s\nwarm: %s", i, cold[i], warm[i])
		}
	}

	// Corrupt every entry: the next run must recompute (misses), not fail.
	ents, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if err := os.WriteFile(filepath.Join(cacheDir, e.Name()), []byte("not json"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	rec, recSums := chainDiags(t, cacheDir)
	if recSums.CacheMisses != 2 {
		t.Fatalf("corrupted cache: %d misses; want 2", recSums.CacheMisses)
	}
	if len(rec) != len(cold) {
		t.Errorf("post-corruption diagnostics diverge: %d vs %d", len(rec), len(cold))
	}
}

// TestCacheInvalidatesOnEdit proves Merkle keying: editing a leaf package
// invalidates it and its dependents, and the recomputed chain reflects
// the edit.
func TestCacheInvalidatesOnEdit(t *testing.T) {
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	// Copy both fixtures into a temp tree we can edit.
	tmp := t.TempDir()
	for _, name := range []string{"chainhelper", "chain"} {
		if err := os.MkdirAll(filepath.Join(tmp, name), 0o755); err != nil {
			t.Fatal(err)
		}
		src, err := os.ReadFile(filepath.Join("testdata", "src", name, name+".go"))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(tmp, name, name+".go"), src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	cacheDir := t.TempDir()
	run := func() *lint.Summaries {
		loader, err := lint.NewLoader(root)
		if err != nil {
			t.Fatal(err)
		}
		helper, err := loader.LoadDir(filepath.Join(tmp, "chainhelper"), "chainhelper")
		if err != nil {
			t.Fatal(err)
		}
		pkg, err := loader.LoadDir(filepath.Join(tmp, "chain"), "chain")
		if err != nil {
			t.Fatal(err)
		}
		var sums *lint.Summaries
		if _, err := lint.RunOpts(fixtureCfg("chain"), []*lint.Analyzer{lint.WallClock},
			[]*lint.Package{pkg}, lint.Options{
				CacheDir:     cacheDir,
				Universe:     []*lint.Package{helper, pkg},
				SummariesOut: &sums,
			}); err != nil {
			t.Fatal(err)
		}
		return sums
	}

	if s := run(); s.CacheMisses != 2 {
		t.Fatalf("cold: want 2 misses, got %d", s.CacheMisses)
	}
	if s := run(); s.CacheHits != 2 {
		t.Fatalf("warm: want 2 hits, got %d", s.CacheHits)
	}

	// Append a comment to the helper: its key changes, and chain's key
	// changes transitively (dep keys fold into the Merkle hash).
	helperFile := filepath.Join(tmp, "chainhelper", "chainhelper.go")
	src, err := os.ReadFile(helperFile)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(helperFile, append(src, []byte("\n// edited\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	if s := run(); s.CacheMisses != 2 {
		t.Errorf("after leaf edit: want 2 misses (leaf and dependent), got %d misses %d hits", s.CacheMisses, s.CacheHits)
	}
}
