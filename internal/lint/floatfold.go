package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatFold flags floating-point reductions folded in map iteration order.
// Float addition and multiplication are not associative, so even with a
// sorted *effect* (the same set of terms), accumulating them in a random
// order can change the last bits of the result — enough to flip a rounded
// score or a golden report byte. Integers commute exactly and are not
// flagged; the fix is to collect values into a slice, sort by key, and
// fold the sorted slice.
var FloatFold = &Analyzer{
	Name: "floatfold",
	Doc: "flag float accumulation inside map iteration; fold over sorted keys instead " +
		"(float addition is not associative)",
	Run: runFloatFold,
}

func runFloatFold(pass *Pass) error {
	if !pass.Cfg.IsDeterministic(pass.PkgPath) {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(bn ast.Node) bool {
				// Interprocedural: calling a helper that folds floats into
				// surviving state runs one fold step per key, in map order.
				if call, ok := bn.(*ast.CallExpr); ok {
					if f := calleeFunc(pass.Info, call); f != nil {
						if s := pass.Summaries.Lookup(f); s.Has(HazardFloatAccum) {
							pass.Report(call.Pos(),
								"map iteration calls %s, which accumulates floats into surviving state (%s → %s); fold over sorted keys",
								f.Name(), f.Name(), s.Chain(HazardFloatAccum))
							return false
						}
					}
				}
				as, ok := bn.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != 1 {
					return true
				}
				lhs := ast.Unparen(as.Lhs[0])
				if !isEscapingFloat(pass, lhs, rng) {
					return true
				}
				switch as.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					pass.Report(as.Pos(),
						"float accumulation %s in map iteration order is nondeterministic; fold over sorted keys", as.Tok)
				case token.ASSIGN:
					if selfReferencingFold(pass, lhs, as.Rhs[0]) {
						pass.Report(as.Pos(),
							"float accumulation in map iteration order is nondeterministic; fold over sorted keys")
					}
				}
				return true
			})
			return true
		})
	}
	return nil
}

// isEscapingFloat reports whether lhs is a float-typed variable or field
// whose storage outlives the range statement.
func isEscapingFloat(pass *Pass, lhs ast.Expr, rng *ast.RangeStmt) bool {
	tv, ok := pass.Info.Types[lhs]
	if !ok {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsFloat == 0 {
		return false
	}
	switch lhs := lhs.(type) {
	case *ast.Ident:
		return !declaredWithin(pass.Info.Uses[lhs], rng.Pos(), rng.End())
	case *ast.SelectorExpr:
		// A field or qualified variable always outlives the loop body —
		// unless the whole receiver is loop-local (the per-key accumulator
		// pattern `s := get(k); s.total += v`, which is keyed, not folded).
		if root := rootIdent(lhs); root != nil {
			return !declaredWithin(pass.Info.Uses[root], rng.Pos(), rng.End())
		}
		return true
	}
	return false
}

// rootIdent unwraps a selector chain (a.b.c) to its base identifier.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// selfReferencingFold detects `x = x + expr` (and -, *, /) — the spelled-out
// form of a compound accumulation.
func selfReferencingFold(pass *Pass, lhs ast.Expr, rhs ast.Expr) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok {
		return false
	}
	switch bin.Op {
	case token.ADD, token.SUB, token.MUL, token.QUO:
	default:
		return false
	}
	lobj := exprObject(pass.Info, lhs)
	if lobj == nil {
		return false
	}
	return exprObject(pass.Info, bin.X) == lobj || exprObject(pass.Info, bin.Y) == lobj
}

// exprObject resolves an ident or selector to its object (field selectors
// resolve to the field var).
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}
