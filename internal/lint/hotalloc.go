package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// hotalloc.go turns the repo's 0 allocs/op invariants (BenchmarkTxnCommit,
// replica batch apply, the DES dispatch loop — DESIGN.md §15) from a
// warn-only benchstat comparison into a deterministic compile-time check.
// A function annotated
//
//	//detlint:hotpath
//
// (last line of its doc comment) must not heap-allocate: detlint drives
// `go build -gcflags=-m=1` over the annotated packages, parses the escape
// analysis ("... escapes to heap", "moved to heap: x"), and hard-fails on
// any site inside the annotated function or its same-package direct
// callees. Three escape hatches keep the check precise instead of noisy:
//
//   - escapes lexically inside a panic(...) argument are exempt — a
//     deterministic crash path never runs in steady state;
//   - a direct callee annotated //detlint:coldpath is excluded wholesale —
//     for helpers that exist only to build terminal diagnostics (the
//     deadlock reconstructor);
//   - a residual cold-branch allocation (slab growth, error returns)
//     carries //detlint:allow hotalloc(reason) on its line, subject to the
//     same staleness audit as every other suppression.
//
// Escape-analysis output is compiler-version-sensitive, so CI pins the
// step to the go.mod toolchain; annotations cover only same-package direct
// callees — a cross-package callee on the hot path carries its own
// annotation (engine.ApplyBatch does, for replication's replayBatch).

// HotAlloc is the rule's registry entry. It has no per-package Run: the
// check shells out to the compiler and is driven by RunOpts when
// Options.HotAlloc is set (detlint -hotalloc).
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "forbid heap allocation in //detlint:hotpath functions and their same-package " +
		"direct callees, verified against the compiler's escape analysis (-hotalloc)",
}

const (
	hotpathMarker  = "//detlint:hotpath"
	coldpathMarker = "//detlint:coldpath"
)

// hotRegion is one source span the escape analysis must keep clean.
type hotRegion struct {
	file       string // absolute path
	start, end token.Position
	root       string // the annotated function anchoring the region
	fn         string // the function this region covers
}

func (r *hotRegion) contains(line, col int) bool {
	if line < r.start.Line || line > r.end.Line {
		return false
	}
	if line == r.start.Line && col < r.start.Column {
		return false
	}
	if line == r.end.Line && col > r.end.Column {
		return false
	}
	return true
}

// span is a lexical range used for the panic-argument exemption.
type span struct {
	file       string
	start, end token.Position
}

func (s *span) contains(file string, line, col int) bool {
	if s.file != file {
		return false
	}
	r := hotRegion{start: s.start, end: s.end}
	return r.contains(line, col)
}

// hasMarker reports whether the declaration's doc comment carries the
// given detlint marker on a line of its own.
func hasMarker(fd *ast.FuncDecl, marker string) bool {
	if fd.Doc == nil {
		return false
	}
	for _, c := range fd.Doc.List {
		if strings.TrimSpace(c.Text) == marker {
			return true
		}
	}
	return false
}

// collectHotRegions resolves every //detlint:hotpath annotation in pkgs to
// the set of source regions to police: the annotated function plus its
// same-package direct callees, minus //detlint:coldpath helpers. It also
// gathers panic-argument spans for the exemption, and returns the set of
// packages that carry at least one region (the ones worth compiling).
func collectHotRegions(pkgs []*Package) (regions []hotRegion, panics []span, hotPkgs []*Package) {
	for _, pkg := range pkgs {
		ix := indexFuncs(pkg)
		byObj := make(map[string]funcDecl, len(ix.decls))
		for _, fd := range ix.decls {
			byObj[fd.obj.FullName()] = fd
		}
		addRegion := func(root string, fd *ast.FuncDecl, name string) {
			regions = append(regions, hotRegion{
				file:  pkg.Fset.Position(fd.Pos()).Filename,
				start: pkg.Fset.Position(fd.Pos()),
				end:   pkg.Fset.Position(fd.End()),
				root:  root,
				fn:    name,
			})
		}
		n := len(regions)
		for _, fd := range ix.decls {
			if !hasMarker(fd.decl, hotpathMarker) {
				continue
			}
			root := fd.obj.Name()
			addRegion(root, fd.decl, fd.obj.Name())
			seen := map[string]bool{fd.obj.FullName(): true}
			for _, callee := range callees(pkg.Info, fd.decl.Body) {
				full := callee.FullName()
				if seen[full] {
					continue
				}
				seen[full] = true
				cd, ok := byObj[full]
				if !ok || hasMarker(cd.decl, coldpathMarker) || hasMarker(cd.decl, hotpathMarker) {
					continue
				}
				addRegion(root, cd.decl, callee.Name())
			}
		}
		if len(regions) == n {
			continue
		}
		hotPkgs = append(hotPkgs, pkg)
		for _, f := range pkg.Files {
			ast.Inspect(f, func(node ast.Node) bool {
				call, ok := node.(*ast.CallExpr)
				if !ok {
					return true
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
					panics = append(panics, span{
						file:  pkg.Fset.Position(call.Pos()).Filename,
						start: pkg.Fset.Position(call.Pos()),
						end:   pkg.Fset.Position(call.End()),
					})
				}
				return true
			})
		}
	}
	return regions, panics, hotPkgs
}

// escapeLineRe matches the compiler's -m diagnostics we treat as heap
// traffic. "does not escape" lines do not match.
var escapeLineRe = regexp.MustCompile(`^(.+\.go):(\d+):(\d+): (.*(?:escapes to heap|moved to heap).*)$`)

// runHotAlloc drives the compiler over every package containing hotpath
// annotations and converts in-region escape sites to hotalloc diagnostics.
// moduleRoot anchors the build; it must be the go.mod directory.
func runHotAlloc(cfg *Config, pkgs []*Package, moduleRoot string) ([]Diagnostic, error) {
	_ = cfg
	if moduleRoot == "" {
		return nil, fmt.Errorf("lint: hotalloc needs a module root")
	}
	regions, panics, hotPkgs := collectHotRegions(pkgs)
	if len(hotPkgs) == 0 {
		return nil, nil
	}

	// No -o: the annotated packages are libraries, so `go build` type-checks
	// and compiles into the build cache without writing artifacts — and the
	// build cache replays -m output verbatim on unchanged packages, making
	// repeat runs cheap.
	args := []string{"build", "-gcflags=-m=1"}
	for _, pkg := range hotPkgs {
		rel, err := filepath.Rel(moduleRoot, pkg.Dir)
		if err != nil {
			return nil, fmt.Errorf("lint: hotalloc: %w", err)
		}
		args = append(args, "./"+filepath.ToSlash(rel))
	}
	cmd := exec.Command("go", args...)
	cmd.Dir = moduleRoot
	out, err := cmd.CombinedOutput()
	lines := strings.Split(string(out), "\n")
	if err != nil {
		// -m output goes to stderr alongside real errors; a failing build
		// is a hard error, with the compiler's own message.
		for _, l := range lines {
			if strings.HasPrefix(l, "#") || escapeLineRe.MatchString(l) || strings.TrimSpace(l) == "" {
				continue
			}
			if strings.Contains(l, ".go:") {
				return nil, fmt.Errorf("lint: hotalloc build failed: %s", strings.TrimSpace(l))
			}
		}
		return nil, fmt.Errorf("lint: hotalloc: go build: %w", err)
	}

	var diags []Diagnostic
	seen := make(map[string]bool)
	for _, l := range lines {
		m := escapeLineRe.FindStringSubmatch(l)
		if m == nil {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(moduleRoot, file)
		}
		line, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		msg := m[4]
		var reg *hotRegion
		for i := range regions {
			if regions[i].file == file && regions[i].contains(line, col) {
				reg = &regions[i]
				break
			}
		}
		if reg == nil {
			continue
		}
		exempt := false
		for i := range panics {
			if panics[i].contains(file, line, col) {
				exempt = true
				break
			}
		}
		if exempt {
			continue
		}
		key := fmt.Sprintf("%s:%d:%d:%s", file, line, col, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		where := reg.fn
		if reg.fn != reg.root {
			where = reg.fn + " (direct callee of //detlint:hotpath " + reg.root + ")"
		} else {
			where += " (//detlint:hotpath)"
		}
		diags = append(diags, Diagnostic{
			Pos:      token.Position{Filename: file, Line: line, Column: col},
			Analyzer: HotAlloc.Name,
			Message:  fmt.Sprintf("heap allocation on the hot path: %s in %s", msg, where),
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Pos.Column < b.Pos.Column
	})
	return diags, nil
}
