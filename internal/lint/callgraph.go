package lint

import (
	"go/ast"
	"go/types"
)

// callgraph.go builds the bottom-up view of the module that the
// interprocedural layer (summary.go) folds hazard facts over: which
// function declarations exist in each package, and which functions each
// body calls. Go forbids import cycles, so ordering packages topologically
// by imports makes every cross-package callee's summary final before its
// callers are visited; only mutual recursion inside one package needs the
// fixpoint in summary.go.

// declIndex maps each function object declared in pkg to its declaration,
// keyed by the stable full name (types.Func.FullName) so the index survives
// the summary cache round-trip.
type declIndex struct {
	pkg   *Package
	decls []funcDecl
}

// funcDecl is one function or method declaration with its resolved object.
type funcDecl struct {
	obj  *types.Func
	decl *ast.FuncDecl
}

// indexFuncs collects every function and method declaration in the package
// in file order, which is deterministic because the loader sorts files.
func indexFuncs(pkg *Package) *declIndex {
	ix := &declIndex{pkg: pkg}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			ix.decls = append(ix.decls, funcDecl{obj: obj, decl: fd})
		}
	}
	return ix
}

// callees returns the function objects a body invokes, in source order.
// Interface method calls resolve to the interface method object, which has
// no declaration and therefore no summary — dynamic dispatch is opaque to
// the analysis, by design: the testbed's hot paths and helper chains are
// concrete calls.
func callees(info *types.Info, body *ast.BlockStmt) []*types.Func {
	var out []*types.Func
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if f := calleeFunc(info, call); f != nil {
			out = append(out, f)
		}
		return true
	})
	return out
}

// topoPackages orders the universe so that every package appears after all
// of its in-universe imports. Input order is the deterministic tie-break
// (the loader sorts packages by path), so the result is stable.
func topoPackages(universe []*Package) []*Package {
	byPath := make(map[string]*Package, len(universe))
	for _, p := range universe {
		byPath[p.PkgPath] = p
	}
	var (
		out     []*Package
		done    = make(map[string]bool, len(universe))
		visit   func(p *Package)
		onStack = make(map[string]bool, len(universe))
	)
	visit = func(p *Package) {
		if done[p.PkgPath] || onStack[p.PkgPath] {
			return
		}
		onStack[p.PkgPath] = true
		for _, imp := range p.Types.Imports() {
			if dep, ok := byPath[imp.Path()]; ok {
				visit(dep)
			}
		}
		onStack[p.PkgPath] = false
		done[p.PkgPath] = true
		out = append(out, p)
	}
	for _, p := range universe {
		visit(p)
	}
	return out
}
