// Package linttest runs detlint analyzers over fixture packages and checks
// their diagnostics against // want comments — the same convention as
// golang.org/x/tools/go/analysis/analysistest, reimplemented on the
// repo's dependency-free analysis framework.
//
// A fixture line that should trigger a diagnostic carries a trailing
// comment with one quoted regexp per expected diagnostic:
//
//	time.Sleep(time.Second) // want `time\.Sleep reads the wall clock`
//
// Lines with no want comment must produce no diagnostics. Suppressed sites
// (//detlint:allow) therefore test as negatives simply by carrying no want.
package linttest

import (
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"cloudybench/internal/lint"
)

var wantRe = regexp.MustCompile("//\\s*want\\s+((?:(?:`[^`]*`|\"[^\"]*\")\\s*)+)$")
var wantArgRe = regexp.MustCompile("`[^`]*`|\"[^\"]*\"")

// Run loads the fixture package at testdata/src/<dir> relative to the
// caller's package directory, applies the analyzers under the given
// config, and reports any mismatch between produced diagnostics and the
// fixtures' want comments as test errors.
func Run(t *testing.T, dir string, cfg *lint.Config, analyzers ...*lint.Analyzer) {
	t.Helper()
	RunWith(t, dir, cfg, lint.Options{}, nil, analyzers...)
}

// RunWith is Run with explicit runner options and sibling fixture packages:
// each dir in deps is loaded (in order, under its own name as import path)
// before the target fixture, so the target can import it and the
// interprocedural summaries see the whole tower. The summary universe is
// everything the loader has touched; opts.Universe is overwritten.
func RunWith(t *testing.T, dir string, cfg *lint.Config, opts lint.Options, deps []string, analyzers ...*lint.Analyzer) {
	t.Helper()

	moduleRoot, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(moduleRoot)
	if err != nil {
		t.Fatal(err)
	}
	// Fixture dirs load under absolute paths so positions compare equal
	// with diagnostics that carry absolute filenames (hotalloc joins the
	// compiler's module-relative output onto ModuleRoot).
	absFixture := func(name string) string {
		p, err := filepath.Abs(filepath.Join("testdata", "src", name))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	for _, dep := range deps {
		if _, err := loader.LoadDir(absFixture(dep), dep); err != nil {
			t.Fatalf("loading fixture dependency %s: %v", dep, err)
		}
	}
	pkg, err := loader.LoadDir(absFixture(dir), dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	opts.Universe = loader.Loaded()
	if opts.HotAlloc && opts.ModuleRoot == "" {
		opts.ModuleRoot = moduleRoot
	}
	diags, err := lint.RunOpts(cfg, analyzers, []*lint.Package{pkg}, opts)
	if err != nil {
		t.Fatalf("running analyzers over %s: %v", dir, err)
	}

	wants := collectWants(t, pkg.Fset, pkg)
	matched := make([]bool, len(wants))

	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if matched[i] || w.file != d.Pos.Filename || w.line != d.Pos.Line {
				continue
			}
			if w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("no diagnostic at %s:%d matching %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func collectWants(t *testing.T, fset *token.FileSet, pkg *lint.Package) []want {
	t.Helper()
	var out []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, arg := range wantArgRe.FindAllString(m[1], -1) {
					pat := strings.Trim(arg, "`\"")
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want pattern %q: %v", pos.Filename, pos.Line, pat, err)
					}
					out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above working directory")
		}
		dir = parent
	}
}
