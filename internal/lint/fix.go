package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"os"
	"sort"
	"strconv"
	"strings"
)

// fix.go is the machine-applicable side of detlint: diagnostics whose
// resolution is mechanical carry a Fix, and `detlint -fix` applies them —
// gofmt-clean and idempotent (a second run finds nothing left to do).
// Two rewrites are mechanical today:
//
//   - maporder's collect-then-sort: a flagged `for k, v := range m {...}`
//     becomes collect keys → slices.Sort → iterate sorted keys, with the
//     original body preserved verbatim. Only loops whose shape provably
//     permits it are rewritten (pure map expression, declared ident key of
//     an ordered type, body that does not touch the map itself).
//   - allowstale's deletion: a //detlint:allow that suppresses nothing is
//     removed, taking its whole line along when it stood alone.
//
// Everything else stays a human decision.

// TextEdit replaces the byte range [Start, End) of a file with New.
type TextEdit struct {
	Start, End int
	New        string
	// ExpandLine widens a pure deletion to consume the whole line when
	// the rest of the line is blank, and any trailing horizontal
	// whitespace before it otherwise — so removing a comment does not
	// strand a blank line or trailing spaces.
	ExpandLine bool
}

// Fix is one machine-applicable rewrite, confined to a single file.
type Fix struct {
	Path  string
	Edits []TextEdit
	// AddImports lists import paths the rewritten code needs (e.g.
	// "slices"); they are inserted only if the file lacks them.
	AddImports []string
}

// ApplyFixes applies every diagnostic's Fix, grouped per file, and returns
// the number of fixes applied and the files rewritten (sorted). Fixes
// whose edits overlap an already-applied edit in the same file are skipped
// — re-running detlint surfaces them again on the rewritten tree.
func ApplyFixes(diags []Diagnostic) (applied int, files []string, err error) {
	byPath := make(map[string][]*Fix)
	for i := range diags {
		if f := diags[i].Fix; f != nil && f.Path != "" {
			byPath[f.Path] = append(byPath[f.Path], f)
		}
	}
	var paths []string
	for p := range byPath {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	for _, path := range paths {
		src, rerr := os.ReadFile(path)
		if rerr != nil {
			return applied, files, fmt.Errorf("lint: applying fixes: %w", rerr)
		}
		out := src
		var taken []TextEdit
		var imports []string
		n := 0
		for _, fix := range byPath[path] {
			if overlapsAny(fix.Edits, taken) {
				continue
			}
			taken = append(taken, fix.Edits...)
			imports = append(imports, fix.AddImports...)
			n++
		}
		if n == 0 {
			continue
		}
		for i := range taken {
			taken[i] = expandEdit(src, taken[i])
		}
		sort.Slice(taken, func(i, j int) bool { return taken[i].Start > taken[j].Start })
		for _, e := range taken {
			out = append(out[:e.Start:e.Start], append([]byte(e.New), out[e.End:]...)...)
		}
		out = insertImports(out, imports)
		formatted, ferr := format.Source(out)
		if ferr != nil {
			return applied, files, fmt.Errorf("lint: fix for %s produced unparsable code: %w", path, ferr)
		}
		info, serr := os.Stat(path)
		mode := os.FileMode(0o644)
		if serr == nil {
			mode = info.Mode().Perm()
		}
		if werr := os.WriteFile(path, formatted, mode); werr != nil {
			return applied, files, fmt.Errorf("lint: writing %s: %w", path, werr)
		}
		applied += n
		files = append(files, path)
	}
	return applied, files, nil
}

func overlapsAny(edits, taken []TextEdit) bool {
	for _, e := range edits {
		for _, t := range taken {
			if e.Start < t.End && t.Start < e.End {
				return true
			}
		}
	}
	return false
}

// expandEdit widens an ExpandLine deletion per the TextEdit contract.
func expandEdit(src []byte, e TextEdit) TextEdit {
	if !e.ExpandLine || e.New != "" {
		return e
	}
	start, end := e.Start, e.End
	ls := start
	for ls > 0 && src[ls-1] != '\n' {
		ls--
	}
	blankBefore := true
	for i := ls; i < start; i++ {
		if src[i] != ' ' && src[i] != '\t' {
			blankBefore = false
			break
		}
	}
	if blankBefore && (end >= len(src) || src[end] == '\n') {
		// The comment owns its line: delete line start through newline.
		start = ls
		if end < len(src) {
			end++
		}
	} else {
		// Trailing comment: also eat the whitespace run before it.
		for start > 0 && (src[start-1] == ' ' || src[start-1] == '\t') {
			start--
		}
	}
	return TextEdit{Start: start, End: end}
}

// insertImports adds each missing import path, letting the final gofmt
// pass (which sorts import specs) settle ordering.
func insertImports(src []byte, paths []string) []byte {
	if len(paths) == 0 {
		return src
	}
	seen := make(map[string]bool)
	s := string(src)
	for _, p := range paths {
		if seen[p] || strings.Contains(s, strconv.Quote(p)) {
			// Already imported (or at minimum the quoted path appears in
			// an import block — close enough for the stdlib paths fixes
			// add; gofmt would reject a duplicate spec anyway).
			continue
		}
		seen[p] = true
		if i := strings.Index(s, "import ("); i >= 0 {
			at := i + len("import (")
			s = s[:at] + "\n\t" + strconv.Quote(p) + s[at:]
			continue
		}
		// No import block: add a standalone import after the package
		// clause (off = start of the clause, so the newline search below
		// finds the clause's own terminator, not one preceding it).
		off := 0
		if !strings.HasPrefix(s, "package ") {
			i := strings.Index(s, "\npackage ")
			if i < 0 {
				continue
			}
			off = i + 1
		}
		if nl := strings.Index(s[off:], "\n"); nl >= 0 {
			at := off + nl + 1
			s = s[:at] + "\nimport " + strconv.Quote(p) + "\n" + s[at:]
		}
	}
	return []byte(s)
}

// buildMapOrderFix constructs the collect-then-sort rewrite for a flagged
// map range, or nil when the loop's shape does not provably permit it:
//
//	for k, v := range m { body }
//	  ⇒
//	keys := make([]K, 0, len(m))
//	for k := range m {
//	    keys = append(keys, k)
//	}
//	slices.Sort(keys)
//	for _, k := range keys {
//	    v := m[k]
//	    body
//	}
//
// Preconditions: the range expression is a call-free ident/selector chain
// (safe to evaluate twice), the key is a declared identifier (or blank
// with a declared value) of an ordered basic type, and the body never
// mentions the map itself (so deletes/inserts during iteration — whose
// semantics the rewrite would change — stay manual).
func buildMapOrderFix(pass *Pass, rng *ast.RangeStmt, encl *ast.BlockStmt, file *ast.File) *Fix {
	if rng.Key == nil || rng.Tok != token.DEFINE {
		return nil
	}
	mt, ok := pass.Info.Types[rng.X]
	if !ok {
		return nil
	}
	mapType, ok := mt.Type.Underlying().(*types.Map)
	if !ok {
		return nil
	}
	keyType := mapType.Key()
	basic, ok := keyType.Underlying().(*types.Basic)
	if !ok || basic.Info()&(types.IsInteger|types.IsFloat|types.IsString) == 0 {
		return nil
	}
	// Named key types from other packages would drag a qualifier and an
	// import along; keep the rewrite to basics and same-package names.
	keyTypeStr := ""
	switch kt := keyType.(type) {
	case *types.Basic:
		keyTypeStr = kt.Name()
	case *types.Named:
		if kt.Obj().Pkg() != pass.Pkg {
			return nil
		}
		keyTypeStr = kt.Obj().Name()
	default:
		return nil
	}

	if !callFree(rng.X) {
		return nil
	}
	mapObj := exprObject(pass.Info, rootAsExpr(rng.X))
	if mapObj != nil && mentionsObject(pass.Info, rng.Body, mapObj) {
		return nil
	}

	keyName := "k"
	if id, ok := rng.Key.(*ast.Ident); ok {
		if id.Name != "_" {
			keyName = id.Name
		} else if rng.Value == nil {
			return nil // `for _ := range m` observes nothing orderable
		}
	} else {
		return nil
	}
	valName := ""
	if id, ok := rng.Value.(*ast.Ident); ok && id.Name != "_" {
		valName = id.Name
	}

	pos := pass.Fset.Position(rng.Pos())
	src, err := os.ReadFile(pos.Filename)
	if err != nil {
		return nil
	}
	off := func(p token.Pos) int { return pass.Fset.Position(p).Offset }
	mapTxt := string(src[off(rng.X.Pos()):off(rng.X.End())])
	bodyTxt := string(src[off(rng.Body.Lbrace)+1 : off(rng.Body.Rbrace)])
	// The braces' interior starts with the original newline; the rewrite
	// emits its own after the loop header (and the value binding), so keep
	// only one.
	bodyTxt = strings.TrimPrefix(bodyTxt, "\n")

	keysName := freshName("keys", pass, encl)
	if keyName == "_" { // blank key with a declared value
		keyName = freshName("k", pass, encl)
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s := make([]%s, 0, len(%s))\n", keysName, keyTypeStr, mapTxt)
	fmt.Fprintf(&b, "for %s := range %s {\n%s = append(%s, %s)\n}\n", keyName, mapTxt, keysName, keysName, keyName)
	fmt.Fprintf(&b, "slices.Sort(%s)\n", keysName)
	fmt.Fprintf(&b, "for _, %s := range %s {\n", keyName, keysName)
	if valName != "" {
		fmt.Fprintf(&b, "%s := %s[%s]\n", valName, mapTxt, keyName)
	}
	b.WriteString(bodyTxt)
	b.WriteString("}")

	fix := &Fix{
		Path:  pos.Filename,
		Edits: []TextEdit{{Start: off(rng.Pos()), End: off(rng.End()), New: b.String()}},
	}
	if !fileImports(file, "slices") {
		fix.AddImports = []string{"slices"}
	}
	return fix
}

// callFree reports whether the expression contains no calls, so double
// evaluation is safe.
func callFree(e ast.Expr) bool {
	free := true
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.CallExpr); ok {
			free = false
		}
		return free
	})
	return free
}

// rootAsExpr unwraps selector/index chains to the base expression for
// object resolution.
func rootAsExpr(e ast.Expr) ast.Expr {
	if id := rootIdent(e); id != nil {
		return id
	}
	return e
}

// mentionsObject reports whether the body references obj anywhere.
func mentionsObject(info *types.Info, body *ast.BlockStmt, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// freshName returns base if no identifier in the enclosing body uses it,
// else base2, base3, ...
func freshName(base string, pass *Pass, encl *ast.BlockStmt) string {
	used := make(map[string]bool)
	ast.Inspect(encl, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			used[id.Name] = true
		}
		return true
	})
	if !used[base] {
		return base
	}
	for i := 2; ; i++ {
		cand := fmt.Sprintf("%s%d", base, i)
		if !used[cand] {
			return cand
		}
	}
}

// fileImports reports whether the file already imports path.
func fileImports(file *ast.File, path string) bool {
	for _, imp := range file.Imports {
		if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == path {
			return true
		}
	}
	return false
}
