package lint_test

import (
	"go/format"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudybench/internal/lint"
)

// runFixable loads the package at dir under pkgPath and returns its
// diagnostics under the maporder analyzer (whose rewrites plus the
// allowstale deletion are detlint's machine-applicable set).
func runFixable(t *testing.T, dir, pkgPath string) []lint.Diagnostic {
	t.Helper()
	root, err := moduleRoot()
	if err != nil {
		t.Fatal(err)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, pkgPath)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.RunOpts(fixtureCfg(pkgPath), []*lint.Analyzer{lint.MapOrder},
		[]*lint.Package{pkg}, lint.Options{NoCache: true})
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// TestFixGoldenRoundTrip applies detlint's machine fixes to the fixgolden
// fixture and pins the result against fixgolden.golden byte-for-byte. The
// output must be gofmt-clean, and a second fix pass must be a no-op —
// both on bytes and on diagnostics.
func TestFixGoldenRoundTrip(t *testing.T) {
	src, err := os.ReadFile(filepath.Join("testdata", "src", "fixgolden", "fixgolden.go"))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	target := filepath.Join(dir, "fixgolden.go")
	if err := os.WriteFile(target, src, 0o644); err != nil {
		t.Fatal(err)
	}

	diags := runFixable(t, dir, "fixgolden")
	fixable := 0
	for _, d := range diags {
		if d.Fix != nil {
			fixable++
		}
	}
	if fixable < 3 {
		t.Fatalf("expected >=3 fixable diagnostics (two loop rewrites + one stale allow), got %d of %d", fixable, len(diags))
	}
	applied, files, err := lint.ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != fixable || len(files) != 1 {
		t.Fatalf("applied %d fixes to %d files; want %d to 1", applied, len(files), fixable)
	}

	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "fixgolden.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with UPDATE_GOLDEN=1 to regenerate)", err)
	}
	if string(got) != string(want) {
		t.Errorf("fixed output diverges from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}

	formatted, err := format.Source(got)
	if err != nil {
		t.Fatalf("fixed output does not parse: %v", err)
	}
	if string(formatted) != string(got) {
		t.Errorf("fixed output is not gofmt-clean")
	}

	// Idempotence: the rewritten tree is diagnostic-free, so a second -fix
	// changes nothing.
	again := runFixable(t, dir, "fixgolden2")
	if len(again) != 0 {
		t.Errorf("rewritten tree still produces diagnostics: %v", again)
	}
	applied2, _, err := lint.ApplyFixes(again)
	if err != nil {
		t.Fatal(err)
	}
	after, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if applied2 != 0 || string(after) != string(got) {
		t.Errorf("second fix pass was not a no-op (applied %d)", applied2)
	}
}

// TestFixAddsImportWithoutBlock is the regression test for the
// import-insertion bug: a file whose imports are a single standalone
// statement (no `import (...)` block) must get the slices import after
// the package clause, not before it — the old search found the newline
// preceding `package` and produced unparsable code.
func TestFixAddsImportWithoutBlock(t *testing.T) {
	dir := t.TempDir()
	src := `// Package singleimp has no import block.
package singleimp

import "fmt"

func Dump(totals map[string]int) {
	for name, n := range totals {
		fmt.Println(name, n)
	}
}
`
	target := filepath.Join(dir, "s.go")
	if err := os.WriteFile(target, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runFixable(t, dir, "singleimp")
	applied, _, err := lint.ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 1 {
		t.Fatalf("applied %d fixes; want 1", applied)
	}
	got, err := os.ReadFile(target)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), `"slices"`) {
		t.Errorf("fixed file lacks the slices import:\n%s", got)
	}
	if again := runFixable(t, dir, "singleimp2"); len(again) != 0 {
		t.Errorf("rewritten tree still produces diagnostics: %v", again)
	}
}

// TestFixSkipsUnsafeShapes pins the preconditions: loops whose rewrite
// could change semantics (body touches the map, non-ordered key) carry no
// Fix even though they are diagnosed.
func TestFixSkipsUnsafeShapes(t *testing.T) {
	dir := t.TempDir()
	src := `package unsafeshapes

import "fmt"

type pair struct{ a, b int }

func mutate(m map[string]int) {
	for k := range m {
		fmt.Println(k)
		delete(m, k)
	}
}

func structKey(m map[pair]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "u.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	diags := runFixable(t, dir, "unsafeshapes")
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics, got %d: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Fix != nil {
			t.Errorf("unsafe loop shape at %s:%d still offered a fix", d.Pos.Filename, d.Pos.Line)
		}
	}
}
