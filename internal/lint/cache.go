package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// cache.go persists per-package function summaries between runs so CI and
// repeat local runs skip the interprocedural walk for unchanged subtrees.
// The key for a package is a Merkle hash: its own file names and contents
// plus the keys of its in-module imports, so editing any file invalidates
// exactly the packages that can observe the edit (the edited package and
// everything above it in the import DAG) and nothing else.
//
// Entries are tiny JSON maps (function full name → hazard chains); a
// corrupt, truncated, or version-skewed entry is treated as a miss, never
// an error — the cache can only make a run faster, not change its answer.

// summaryCacheVersion salts every key alongside toolSalt (a hash of the
// running binary) — the version names the schema, the binary hash catches
// every semantic change without anyone remembering to bump anything.
const summaryCacheVersion = "detlint-summary-v1"

// toolSalt hashes the executable running the analysis, so rebuilding
// detlint (or the test binary) invalidates the whole cache: summaries are
// a function of the extraction logic as much as of the source they
// summarize. Falls back to the bare version string if the binary cannot
// be read (caching then survives only schema-compatible runs).
var toolSalt = sync.OnceValue(func() string {
	exe, err := os.Executable()
	if err != nil {
		return summaryCacheVersion
	}
	f, err := os.Open(exe)
	if err != nil {
		return summaryCacheVersion
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		return summaryCacheVersion
	}
	return hex.EncodeToString(h.Sum(nil))
})

// configFingerprint folds the config fields that shape summaries and
// package gates into the cache key, so two runs over the same files under
// different configs (the fixture tests do this) never share entries.
func configFingerprint(cfg *Config) string {
	h := sha256.New()
	for _, list := range [][]string{cfg.Deterministic, cfg.RandExempt, cfg.Kernel, cfg.Emitters, cfg.ProcTypes} {
		fmt.Fprintln(h, list)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// summaryCache is a directory of per-package summary files.
type summaryCache struct {
	dir string
}

// openSummaryCache returns a cache rooted at dir, or at the user cache
// directory when dir is empty (the DETLINT_CACHE environment variable
// overrides both). A nil cache is returned when no writable location
// exists; callers treat nil as "caching disabled".
func openSummaryCache(dir string) *summaryCache {
	if env := os.Getenv("DETLINT_CACHE"); env != "" {
		dir = env
	}
	if dir == "" {
		base, err := os.UserCacheDir()
		if err != nil {
			return nil
		}
		dir = filepath.Join(base, "cloudybench-detlint")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	return &summaryCache{dir: dir}
}

// packageKey computes the Merkle key for pkg given the already-computed
// keys of its in-module dependencies (depKeys, keyed by import path).
// Dependencies outside the module (the standard library) are classified
// by fixed primitive tables compiled into the linter, so the version salt
// covers them.
func (c *summaryCache) packageKey(cfg *Config, pkg *Package, depKeys map[string]string) string {
	h := sha256.New()
	fmt.Fprintln(h, summaryCacheVersion)
	fmt.Fprintln(h, toolSalt())
	fmt.Fprintln(h, configFingerprint(cfg))
	fmt.Fprintln(h, pkg.PkgPath)

	ents, err := os.ReadDir(pkg.Dir)
	if err == nil {
		for _, e := range ents {
			name := e.Name()
			if e.IsDir() || filepath.Ext(name) != ".go" {
				continue
			}
			data, err := os.ReadFile(filepath.Join(pkg.Dir, name))
			if err != nil {
				continue
			}
			fmt.Fprintf(h, "file %s %d\n", name, len(data))
			h.Write(data)
		}
	}

	var deps []string
	for _, imp := range pkg.Types.Imports() {
		if k, ok := depKeys[imp.Path()]; ok {
			deps = append(deps, imp.Path()+"="+k)
		}
	}
	sort.Strings(deps)
	for _, d := range deps {
		fmt.Fprintln(h, "dep", d)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the serialized form: function full name → hazard name →
// witness chain.
type cacheEntry map[string]map[string][]string

func (c *summaryCache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// load returns the summaries stored under key, or ok=false on any miss or
// decode problem.
func (c *summaryCache) load(key string) (map[string]*FuncSummary, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var entry cacheEntry
	if err := json.Unmarshal(data, &entry); err != nil {
		return nil, false
	}
	out := make(map[string]*FuncSummary, len(entry))
	for name, chains := range entry {
		fs := &FuncSummary{}
		for hname, chain := range chains {
			h, ok := hazardByName(hname)
			if !ok {
				return nil, false // future hazard kind: treat as miss
			}
			fs.Chains[h] = chain
		}
		out[name] = fs
	}
	return out, true
}

// store writes the summaries under key. Failures are ignored: a read-only
// cache directory degrades to cold runs, not errors.
func (c *summaryCache) store(key string, sums map[string]*FuncSummary) {
	entry := make(cacheEntry, len(sums))
	for name, fs := range sums {
		chains := make(map[string][]string)
		for h := Hazard(0); h < numHazards; h++ {
			if fs.Chains[h] != nil {
				chains[h.Name()] = fs.Chains[h]
			}
		}
		if len(chains) > 0 {
			entry[name] = chains
		}
	}
	data, err := json.Marshal(entry)
	if err != nil {
		return
	}
	tmp := c.path(key) + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return
	}
	_ = os.Rename(tmp, c.path(key))
}
