package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// Config declares which packages the determinism contract binds and where
// the blessed exceptions live. It is the "facts" layer shared by every
// analyzer: rules consult it instead of hard-coding package lists, and
// tests substitute a fixture-scoped config.
type Config struct {
	// Deterministic is the set of import paths whose code must be a pure
	// function of its inputs and seed. Suffix "/..." matches a subtree.
	Deterministic []string
	// RandExempt are packages allowed to touch math/rand directly — the
	// seeded stream home (internal/rng). Everyone else draws randomness
	// from rng sources.
	RandExempt []string
	// Kernel are packages blessed to use goroutines and channels: the DES
	// kernel itself, which turns them back into deterministic virtual
	// time. rawgo skips these; every other exception needs a
	// //detlint:allow comment at the site.
	Kernel []string
	// Emitters are packages whose call surface counts as "output" for
	// maporder: calling into them from a map iteration bakes map order
	// into rendered bytes.
	Emitters []string
	// ProcTypes are the fully-qualified named types whose presence as a
	// function parameter marks the function as sim-proc context for
	// vtblock ("pkg/path.TypeName"; a pointer to the type matches).
	// Default: the DES kernel's Proc.
	ProcTypes []string
}

// DefaultConfig returns the repository's determinism contract. Everything
// under internal/ is part of the deterministic testbed except the linter
// itself; cmd/ entry points and examples/ may use wall-clock time for
// operator-facing progress output.
func DefaultConfig() *Config {
	return &Config{
		Deterministic: []string{
			"cloudybench/internal/autoscale",
			"cloudybench/internal/baselines",
			"cloudybench/internal/cdb",
			"cloudybench/internal/chaos",
			"cloudybench/internal/check",
			"cloudybench/internal/cluster",
			"cloudybench/internal/config",
			"cloudybench/internal/core",
			"cloudybench/internal/engine",
			"cloudybench/internal/evaluator",
			"cloudybench/internal/experiments",
			"cloudybench/internal/meter",
			"cloudybench/internal/metrics",
			"cloudybench/internal/netsim",
			"cloudybench/internal/node",
			"cloudybench/internal/obs",
			"cloudybench/internal/patterns",
			"cloudybench/internal/pricing",
			"cloudybench/internal/report",
			"cloudybench/internal/replication",
			"cloudybench/internal/rng",
			"cloudybench/internal/sim",
			"cloudybench/internal/sqlmini",
			"cloudybench/internal/storage",
			// The linter's own fixture packages: ./... skips testdata, but
			// pointing detlint at a fixture directly must fail — the
			// fixtures double as a liveness check that the rules still
			// have teeth (TestDetlintFlagsFixtures).
			"cloudybench/internal/lint/testdata/...",
		},
		RandExempt: []string{"cloudybench/internal/rng"},
		Kernel:     []string{"cloudybench/internal/sim"},
		ProcTypes:  []string{"cloudybench/internal/sim.Proc"},
		Emitters: []string{
			"cloudybench/internal/report",
			"cloudybench/internal/obs",
		},
	}
}

func matchPath(pkgPath string, set []string) bool {
	for _, p := range set {
		if sub, ok := strings.CutSuffix(p, "/..."); ok {
			if pkgPath == sub || strings.HasPrefix(pkgPath, sub+"/") {
				return true
			}
			continue
		}
		if pkgPath == p {
			return true
		}
	}
	return false
}

// IsDeterministic reports whether the contract binds pkgPath.
func (c *Config) IsDeterministic(pkgPath string) bool { return matchPath(pkgPath, c.Deterministic) }

// IsRandExempt reports whether pkgPath may use math/rand directly.
func (c *Config) IsRandExempt(pkgPath string) bool { return matchPath(pkgPath, c.RandExempt) }

// IsKernel reports whether pkgPath is blessed concurrency kernel.
func (c *Config) IsKernel(pkgPath string) bool { return matchPath(pkgPath, c.Kernel) }

// IsEmitter reports whether pkgPath's call surface counts as output.
func (c *Config) IsEmitter(pkgPath string) bool { return matchPath(pkgPath, c.Emitters) }

// suppressionRe matches the one accepted exception syntax:
//
//	//detlint:allow rule(reason text)
//
// The rule must be a known analyzer name and the reason must be non-empty;
// a malformed suppression is itself reported, never silently honoured.
var suppressionRe = regexp.MustCompile(`^//detlint:allow\s+([a-z]+)\(([^)]*)\)\s*(?://.*)?$`)

// suppression is one parsed //detlint:allow comment.
type suppression struct {
	rule   string
	reason string
	line   int
	pos    token.Pos
	end    token.Pos
}

// collectSuppressions parses every //detlint:allow comment in the files.
// Malformed or reason-less suppressions are reported as diagnostics of the
// pseudo-analyzer "detlint" so they fail the run instead of masking one.
func collectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool, report func(Diagnostic)) []suppression {
	var out []suppression
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, "//detlint:") {
					continue
				}
				// hotpath/coldpath are annotations consumed by the hotalloc
				// analyzer, not suppressions; anything else under the
				// //detlint: prefix must parse as an allow.
				if t := strings.TrimSpace(c.Text); t == hotpathMarker || t == coldpathMarker {
					continue
				}
				m := suppressionRe.FindStringSubmatch(c.Text)
				bad := func(format string, args ...any) {
					report(Diagnostic{
						Pos:      fset.Position(c.Pos()),
						Analyzer: "detlint",
						Message:  fmt.Sprintf(format, args...),
					})
				}
				if m == nil {
					bad("malformed suppression %q; want //detlint:allow rule(reason)", c.Text)
					continue
				}
				rule, reason := m[1], strings.TrimSpace(m[2])
				if !known[rule] {
					bad("suppression names unknown rule %q", rule)
					continue
				}
				if reason == "" {
					bad("suppression for %s needs a reason: //detlint:allow %s(why this site is safe)", rule, rule)
					continue
				}
				out = append(out, suppression{
					rule:   rule,
					reason: reason,
					line:   fset.Position(c.Pos()).Line,
					pos:    c.Pos(),
					end:    c.End(),
				})
			}
		}
	}
	return out
}

// suppressedBy returns the index of the suppression covering d — same
// rule, same file, comment on the diagnostic's line or the line above — or
// -1. The index lets the runner track which suppressions earned their keep
// (allowstale).
func suppressedBy(d Diagnostic, sups []suppression, fset *token.FileSet) int {
	// Exact-line matches win over comment-above matches: a trailing allow on
	// line N must not also claim line N+1's diagnostic when N+1 carries its
	// own trailing allow (the staleness audit depends on each suppression
	// being credited for its own site).
	above := -1
	for i, s := range sups {
		if s.rule != d.Analyzer {
			continue
		}
		if fset.Position(s.pos).Filename != d.Pos.Filename {
			continue
		}
		if s.line == d.Pos.Line {
			return i
		}
		if s.line == d.Pos.Line-1 && above < 0 {
			above = i
		}
	}
	return above
}
