package lint

// Options configures one detlint run beyond the analyzer list.
type Options struct {
	// Universe is the full set of loaded module-local packages (analyzed
	// packages plus their in-module dependencies) the interprocedural
	// summaries fold over. Nil means the analyzed packages themselves.
	Universe []*Package
	// NoCache disables the on-disk summary cache.
	NoCache bool
	// CacheDir overrides the summary cache location ("" = user cache dir;
	// the DETLINT_CACHE environment variable overrides both).
	CacheDir string
	// HotAlloc enables the escape-analysis check over //detlint:hotpath
	// functions. It shells out to `go build -gcflags=-m` and therefore
	// needs ModuleRoot.
	HotAlloc bool
	// ModuleRoot is the module directory hotalloc builds from.
	ModuleRoot string
	// Summaries receives the computed summary table when non-nil is
	// returned — exposed for tests and -v cache statistics.
	SummariesOut **Summaries
}

// Run executes every analyzer over every package and returns the surviving
// diagnostics in (file, line, column) order. Suppression comments
// (//detlint:allow rule(reason)) are honoured per site; malformed or
// reason-less suppressions surface as diagnostics of the pseudo-rule
// "detlint", and suppressions that no longer suppress anything surface as
// "allowstale" — either way an exception can never silently mask or
// outlive a violation.
func Run(cfg *Config, analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	return RunOpts(cfg, analyzers, pkgs, Options{})
}

// RunOpts is Run with explicit interprocedural and hotalloc options.
func RunOpts(cfg *Config, analyzers []*Analyzer, pkgs []*Package, opts Options) ([]Diagnostic, error) {
	universe := opts.Universe
	if universe == nil {
		universe = pkgs
	}
	var cache *summaryCache
	if !opts.NoCache {
		cache = openSummaryCache(opts.CacheDir)
	}
	sums := BuildSummaries(cfg, universe, cache)
	if opts.SummariesOut != nil {
		*opts.SummariesOut = sums
	}

	// active is the set of rules whose diagnostics this run can produce;
	// a suppression for an inactive rule (e.g. hotalloc when -hotalloc is
	// off) is exempt from staleness because the run cannot tell whether
	// it still earns its keep.
	active := make(map[string]bool, len(analyzers)+1)
	for _, a := range analyzers {
		active[a.Name] = true
	}
	if opts.HotAlloc {
		active[HotAlloc.Name] = true
	}

	known := knownRuleNames()
	var out []Diagnostic
	type pkgSups struct {
		pkg  *Package
		sups []suppression
		used []bool
	}
	var allSups []*pkgSups

	for _, pkg := range pkgs {
		var raw []Diagnostic
		ps := &pkgSups{pkg: pkg}
		ps.sups = collectSuppressions(pkg.Fset, pkg.Files, known, func(d Diagnostic) {
			out = append(out, d)
		})
		ps.used = make([]bool, len(ps.sups))
		allSups = append(allSups, ps)

		for _, a := range analyzers {
			if a.Run == nil {
				continue
			}
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				Info:      pkg.Info,
				PkgPath:   pkg.PkgPath,
				Cfg:       cfg,
				Summaries: sums,
				report:    func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		for _, d := range raw {
			if i := suppressedBy(d, ps.sups, pkg.Fset); i >= 0 {
				ps.used[i] = true
				continue
			}
			out = append(out, d)
		}
	}

	if opts.HotAlloc {
		hot, err := runHotAlloc(cfg, pkgs, opts.ModuleRoot)
		if err != nil {
			return nil, err
		}
		for _, d := range hot {
			covered := false
			for _, ps := range allSups {
				if i := suppressedBy(d, ps.sups, ps.pkg.Fset); i >= 0 {
					ps.used[i] = true
					covered = true
					break
				}
			}
			if !covered {
				out = append(out, d)
			}
		}
	}

	// allowstale: every suppression for an active rule must have earned
	// its keep this run. Suppressions in packages the rule does not police
	// (a kernel-blessed package's rawgo allow, a rand-exempt package's
	// globalrand allow) are left alone: the rule skipping the package is a
	// config decision, not evidence the exception rotted. The deletion is
	// machine-applicable (-fix).
	for _, ps := range allSups {
		for i, s := range ps.sups {
			if ps.used[i] || !active[s.rule] || !ruleCovers(cfg, s.rule, ps.pkg.PkgPath) {
				continue
			}
			pos := ps.pkg.Fset.Position(s.pos)
			end := ps.pkg.Fset.Position(s.end)
			out = append(out, Diagnostic{
				Pos:      pos,
				Analyzer: AllowStale.Name,
				Message: "suppression //detlint:allow " + s.rule + "(" + s.reason + ") no longer suppresses any diagnostic; " +
					"delete it (or re-justify it against a live violation)",
				Fix: &Fix{
					Path: pos.Filename,
					Edits: []TextEdit{{
						Start:      pos.Offset,
						End:        end.Offset,
						ExpandLine: true,
					}},
				},
			})
		}
	}

	sortDiagnostics(out)
	return out, nil
}

// ruleCovers mirrors each rule's package gate: whether the named rule can
// report diagnostics in pkgPath at all under cfg. Kept next to the audit
// that depends on it; a new analyzer with a package gate must be added here
// or its suppressions in skipped packages will be called stale.
func ruleCovers(cfg *Config, rule, pkgPath string) bool {
	switch rule {
	case GlobalRand.Name:
		return cfg.IsDeterministic(pkgPath) && !cfg.IsRandExempt(pkgPath)
	case RawGo.Name, VTBlock.Name:
		return cfg.IsDeterministic(pkgPath) && !cfg.IsKernel(pkgPath)
	case HotAlloc.Name:
		return true // hotpath annotations are legal in any package
	default:
		return cfg.IsDeterministic(pkgPath)
	}
}

// AllowStale is the suppression-rot rule: a //detlint:allow comment that no
// longer suppresses any diagnostic of an active rule is itself an error.
// Its diagnostics come from the runner's suppression bookkeeping, so Run is
// nil; it exists as an Analyzer for the rule registry (-rules, suppression
// parsing, documentation).
var AllowStale = &Analyzer{
	Name: "allowstale",
	Doc: "flag //detlint:allow comments that no longer suppress any diagnostic; " +
		"delete them (detlint -fix does) so the exception inventory cannot rot",
}
