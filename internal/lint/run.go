package lint

// Run executes every analyzer over every package and returns the surviving
// diagnostics in (file, line, column) order. Suppression comments
// (//detlint:allow rule(reason)) are honoured per site; malformed or
// reason-less suppressions surface as diagnostics of the pseudo-rule
// "detlint" so they can never silently mask a violation.
func Run(cfg *Config, analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var out []Diagnostic
	for _, pkg := range pkgs {
		var raw []Diagnostic
		sups := collectSuppressions(pkg.Fset, pkg.Files, known, func(d Diagnostic) {
			out = append(out, d)
		})
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer: a,
				Fset:     pkg.Fset,
				Files:    pkg.Files,
				Pkg:      pkg.Types,
				Info:     pkg.Info,
				PkgPath:  pkg.PkgPath,
				Cfg:      cfg,
				report:   func(d Diagnostic) { raw = append(raw, d) },
			}
			if err := a.Run(pass); err != nil {
				return nil, err
			}
		}
		for _, d := range raw {
			if !suppressed(d, sups, pkg.Fset) {
				out = append(out, d)
			}
		}
	}
	sortDiagnostics(out)
	return out, nil
}
