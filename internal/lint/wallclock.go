package lint

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the time-package functions that read or schedule
// against the machine clock. Types and constants (time.Duration,
// time.Millisecond) stay legal: the testbed measures virtual durations, it
// just must never sample real ones.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// WallClock forbids wall-clock time in deterministic packages. A run's
// report must be a pure function of its seed; time.Now() makes it a
// function of the host's scheduler and clock instead. Virtual time comes
// from the sim kernel (sim.Sim.Now, Proc.Sleep).
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/Since/Sleep/After/NewTimer/NewTicker in deterministic packages; " +
		"virtual time must come from the sim clock",
	Run: runWallClock,
}

func runWallClock(pass *Pass) error {
	if !pass.Cfg.IsDeterministic(pass.PkgPath) {
		return nil
	}
	// Boundary crossings: a deterministic package delegating to an
	// unvetted module helper whose chain samples the clock.
	checkPropagated(pass, HazardWallclock, "the wall clock")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if importedPackage(pass.Info, sel.X) != "time" {
				return true
			}
			if _, isFunc := pass.Info.Uses[sel.Sel].(*types.Func); !isFunc {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Report(sel.Pos(),
					"time.%s reads the wall clock; deterministic packages must take time from the sim kernel (sim.Sim.Now / Proc.Sleep)",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
