// Command cloudybench runs CloudyBench experiments against the simulated
// cloud-native databases and prints paper-style tables and figures.
//
// Usage:
//
//	cloudybench list
//	cloudybench run <experiment-id>... [-scale quick|paper] [-o results.txt]
//	cloudybench run all [-scale quick|paper]
//
// Experiment ids map to the paper's artifacts: f5 t5 f6 t6 t7 t8 f7 lag t9
// f8 f9, plus the testbed extensions: ablations chaos oltp partition suites
// (see `cloudybench list`).
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"cloudybench/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cloudybench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return nil
	}
	switch args[0] {
	case "list":
		return list()
	case "run":
		return runExperiments(args[1:])
	case "soak":
		return runSoak(args[1:])
	case "custom":
		return runCustom(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		return fmt.Errorf("unknown command %q (try: list, run)", args[0])
	}
}

// startProfiles starts a CPU profile (if cpuFile is set) and returns a stop
// function that finishes it and, if memFile is set, writes a post-GC heap
// profile. Inspect either with `go tool pprof`.
func startProfiles(cpuFile, memFile string) (func(), error) {
	stopCPU := func() {}
	if cpuFile != "" {
		f, err := os.Create(cpuFile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		stopCPU = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	return func() {
		stopCPU()
		if memFile == "" {
			return
		}
		f, err := os.Create(memFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "cloudybench: memprofile:", err)
			return
		}
		runtime.GC() // report live allocations, not garbage awaiting collection
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "cloudybench: memprofile:", err)
		}
		f.Close()
	}, nil
}

func usage() {
	fmt.Println(`cloudybench — a testbed for comprehensive evaluation of cloud-native databases

Commands:
  list                     show all experiments
  run <id>... [flags]      run experiments (or "run all")
  soak [flags]             multi-day longitudinal soak on every SUT; writes
                           the soak.csv + soak.md comparison artifact
  custom -props FILE       run a user-defined elasticity pattern from a props file

Flags for run:
  -scale quick|paper|bench experiment scale (default quick)
  -o FILE                  also write the report to FILE
  -trace DIR               write JSONL spans + Prometheus snapshot to DIR
                           (trace-aware experiments, e.g. "oltp")
  -artifacts DIR           write CSV/Markdown artifact files to DIR
                           (artifact-emitting experiments, e.g. "soak")
  -parallel N              fan experiment cells out over N cores
                           (default 0 = all cores; 1 = sequential;
                           the report is byte-identical either way)
  -cpuprofile FILE         write a CPU profile of the run to FILE
  -memprofile FILE         write a post-GC heap profile at exit to FILE

Flags for soak:
  -scale quick|paper|bench soak scale (default quick: 3 virtual days, 2h windows)
  -o DIR                   artifact directory for soak.csv and soak.md
                           (default soak-artifacts)
  -parallel N              as for run

Experiment ids correspond to the paper's tables and figures.`)
}

func runCustom(args []string) error {
	fs := flag.NewFlagSet("custom", flag.ContinueOnError)
	propsFile := fs.String("props", "", "props file with elastic_testTime and *_con keys")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *propsFile == "" {
		return fmt.Errorf("custom: -props FILE required")
	}
	data, err := os.ReadFile(*propsFile)
	if err != nil {
		return err
	}
	out, err := experiments.RunCustomElasticity(string(data))
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

// runSoak is the one-command comparison artifact: it drives the multi-day
// soak on every SUT and drops soak.csv + soak.md into the artifact
// directory, printing the Markdown document to stdout.
func runSoak(args []string) error {
	fs := flag.NewFlagSet("soak", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "soak scale: quick, paper, or bench")
	outDir := fs.String("o", "soak-artifacts", "directory for soak.csv and soak.md")
	parallel := fs.Int("parallel", 0, "SUT cells run on this many cores (0 = all cores, 1 = sequential); the artifact is byte-identical either way")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a post-GC heap profile at exit to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()
	sc, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		return fmt.Errorf("unknown scale %q (quick, paper, or bench)", *scaleName)
	}
	sc.ArtifactDir = *outDir
	experiments.SetParallelism(*parallel)

	fmt.Fprintf(os.Stderr, "== soaking %d virtual days per SUT (%v windows) at scale %s...\n",
		sc.SoakDays, sc.SoakWindow, sc.Name)
	start := time.Now()
	out, err := experiments.Run("soak", sc)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "== soak done in %s\n", time.Since(start).Round(time.Millisecond))
	fmt.Print(out)
	return nil
}

func list() error {
	fmt.Println("Experiments:")
	for _, id := range experiments.IDs() {
		desc, _ := experiments.Describe(id)
		fmt.Printf("  %-4s %s\n", id, desc)
	}
	return nil
}

func runExperiments(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	scaleName := fs.String("scale", "quick", "experiment scale: quick, paper, or bench")
	outFile := fs.String("o", "", "also write the report to this file")
	traceDir := fs.String("trace", "", "write JSONL trace spans and a Prometheus metrics snapshot to this directory (trace-aware experiments)")
	artifactDir := fs.String("artifacts", "", "write CSV/Markdown artifact files to this directory (artifact-emitting experiments, e.g. soak)")
	parallel := fs.Int("parallel", 0, "experiment cells run on this many cores (0 = all cores, 1 = sequential); output is identical either way")
	cpuProfile := fs.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := fs.String("memprofile", "", "write a post-GC heap profile at exit to this file")

	// Accept ids before flags: split args into ids and flag-ish tail.
	var ids []string
	rest := args
	for len(rest) > 0 && !strings.HasPrefix(rest[0], "-") {
		ids = append(ids, rest[0])
		rest = rest[1:]
	}
	if err := fs.Parse(rest); err != nil {
		return err
	}
	if len(ids) == 0 {
		return fmt.Errorf("run: no experiment ids given (try `cloudybench list`)")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	sc, ok := experiments.ScaleByName(*scaleName)
	if !ok {
		return fmt.Errorf("unknown scale %q (quick, paper, or bench)", *scaleName)
	}
	sc.TraceDir = *traceDir
	sc.ArtifactDir = *artifactDir
	experiments.SetParallelism(*parallel)
	stopProfiles, err := startProfiles(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiles()

	var out strings.Builder
	for _, id := range ids {
		desc, ok := experiments.Describe(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q (try `cloudybench list`)", id)
		}
		fmt.Fprintf(os.Stderr, "== running %s (%s) at scale %s...\n", id, desc, sc.Name)
		start := time.Now()
		text, err := experiments.Run(id, sc)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "== %s done in %s\n", id, time.Since(start).Round(time.Millisecond))
		out.WriteString(text)
		out.WriteString("\n")
	}
	if req, comp := experiments.WarmStats(); req > 0 {
		fmt.Fprintf(os.Stderr, "== warm-up cache: %d requests, %d computed (%d reused)\n",
			req, comp, req-comp)
	}
	fmt.Print(out.String())
	if *outFile != "" {
		if err := os.WriteFile(*outFile, []byte(out.String()), 0o644); err != nil {
			return fmt.Errorf("writing %s: %w", *outFile, err)
		}
		fmt.Fprintf(os.Stderr, "report written to %s\n", *outFile)
	}
	return nil
}
