// Command detlint mechanically enforces the testbed's determinism
// contract: seven rules (wallclock, globalrand, maporder, rawgo,
// floatfold, vtblock, allowstale — plus hotalloc under -hotalloc) over
// the module's deterministic packages, with interprocedural hazard
// propagation so a violation buried N helpers deep is reported at the
// boundary where it breaks the contract. See DESIGN.md "The determinism
// contract" for the rules and the suppression syntax.
//
// Usage:
//
//	go run ./cmd/detlint ./...
//	go run ./cmd/detlint -hotalloc ./...   # also enforce //detlint:hotpath
//	go run ./cmd/detlint -fix ./...        # apply machine-applicable fixes
//	go run ./cmd/detlint -json ./...       # diagnostics as JSON lines
//
// Exit status is 0 when the tree is clean, 1 when violations are found,
// and 2 on load/type-check errors — including patterns that match no
// packages, so a typo'd CI invocation cannot pass vacuously. CI runs it
// as a hard-fail step.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cloudybench/internal/lint"
)

func main() {
	os.Exit(realMain(os.Args[1:], os.Stdout, os.Stderr))
}

// realMain is main with its seams exposed: argv in, streams out, exit code
// returned — so the regression tests can drive the command without forking.
func realMain(argv []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		rules    = fs.Bool("rules", false, "print the determinism rules and exit")
		fix      = fs.Bool("fix", false, "apply machine-applicable fixes, then re-report what remains")
		jsonOut  = fs.Bool("json", false, "emit diagnostics as JSON lines on stdout")
		hotalloc = fs.Bool("hotalloc", false, "enforce //detlint:hotpath via the compiler's escape analysis (runs go build)")
		noCache  = fs.Bool("nocache", false, "disable the interprocedural summary cache")
		verbose  = fs.Bool("v", false, "print summary-cache statistics")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: detlint [-rules] [-fix] [-json] [-hotalloc] [-nocache] [packages]\n\n")
		fmt.Fprintf(stderr, "Enforces the determinism contract over module packages (default ./...).\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *rules {
		for _, a := range lint.AllRules() {
			fmt.Fprintf(stdout, "%-10s  %s\n", a.Name, a.Doc)
		}
		return 0
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}

	var sums *lint.Summaries
	opts := lint.Options{
		Universe:     loader.Loaded(),
		NoCache:      *noCache,
		HotAlloc:     *hotalloc,
		ModuleRoot:   root,
		SummariesOut: &sums,
	}
	diags, err := lint.RunOpts(lint.DefaultConfig(), analyzers, pkgs, opts)
	if err != nil {
		fmt.Fprintln(stderr, "detlint:", err)
		return 2
	}

	if *fix {
		applied, files, err := lint.ApplyFixes(diags)
		if err != nil {
			fmt.Fprintln(stderr, "detlint:", err)
			return 2
		}
		for _, f := range files {
			if rel, rerr := filepath.Rel(root, f); rerr == nil {
				f = rel
			}
			fmt.Fprintf(stdout, "detlint: fixed %s\n", f)
		}
		if applied > 0 {
			// Re-analyze the rewritten tree: what survives is what still
			// needs a human (and fixed files must come back clean).
			fresh, err := lint.NewLoader(root)
			if err != nil {
				fmt.Fprintln(stderr, "detlint:", err)
				return 2
			}
			pkgs, err = fresh.Load(patterns...)
			if err != nil {
				fmt.Fprintln(stderr, "detlint:", err)
				return 2
			}
			opts.Universe = fresh.Loaded()
			diags, err = lint.RunOpts(lint.DefaultConfig(), analyzers, pkgs, opts)
			if err != nil {
				fmt.Fprintln(stderr, "detlint:", err)
				return 2
			}
		}
	}

	if *verbose && sums != nil {
		fmt.Fprintf(stderr, "detlint: summary cache: %d hit(s), %d miss(es)\n", sums.CacheHits, sums.CacheMisses)
	}

	enc := json.NewEncoder(stdout)
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		if *jsonOut {
			if err := enc.Encode(jsonDiag{
				File:    d.Pos.Filename,
				Line:    d.Pos.Line,
				Column:  d.Pos.Column,
				Rule:    d.Analyzer,
				Message: d.Message,
				Fixable: d.Fix != nil,
			}); err != nil {
				fmt.Fprintln(stderr, "detlint:", err)
				return 2
			}
			continue
		}
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "detlint: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		return 1
	}
	if !*jsonOut {
		fmt.Fprintf(stdout, "detlint: CLEAN (%d packages)\n", len(pkgs))
	}
	return 0
}

// jsonDiag is the -json line format, one object per diagnostic.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
	Fixable bool   `json:"fixable"`
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
