// Command detlint mechanically enforces the testbed's determinism
// contract: five analyzers (wallclock, globalrand, maporder, rawgo,
// floatfold) over the module's deterministic packages. See DESIGN.md
// "The determinism contract" for the rules and the suppression syntax.
//
// Usage:
//
//	go run ./cmd/detlint ./...
//
// Exit status is 0 when the tree is clean, 1 when violations are found,
// and 2 on load/type-check errors. CI runs it as a hard-fail step.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cloudybench/internal/lint"
)

func main() {
	rules := flag.Bool("rules", false, "print the determinism rules and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: detlint [-rules] [packages]\n\n")
		fmt.Fprintf(flag.CommandLine.Output(), "Enforces the determinism contract over module packages (default ./...).\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := lint.Analyzers()
	if *rules {
		for _, a := range analyzers {
			fmt.Printf("%-10s  %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(lint.DefaultConfig(), analyzers, pkgs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	for _, d := range diags {
		if rel, err := filepath.Rel(root, d.Pos.Filename); err == nil {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "detlint: %d violation(s) in %d package(s) checked\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("detlint: CLEAN (%d packages)\n", len(pkgs))
}

func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
