package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// capture runs realMain with stdout/stderr captured to temp files.
func capture(t *testing.T, argv ...string) (code int, stdout, stderr string) {
	t.Helper()
	outF, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	errF, err := os.CreateTemp(t.TempDir(), "err")
	if err != nil {
		t.Fatal(err)
	}
	code = realMain(argv, outF, errF)
	outB, _ := os.ReadFile(outF.Name())
	errB, _ := os.ReadFile(errF.Name())
	return code, string(outB), string(errB)
}

// TestEmptyPatternFailsLoudly is the regression test for the vacuous-pass
// bug: a pattern that matches no packages must exit 2 with a clear
// message, never report CLEAN.
func TestEmptyPatternFailsLoudly(t *testing.T) {
	code, stdout, stderr := capture(t, "./internal/engine/testdata/...")
	if code != 2 {
		t.Fatalf("exit %d for empty match; want 2\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "matched no packages") {
		t.Errorf("stderr %q does not explain the empty match", stderr)
	}
	if strings.Contains(stdout, "CLEAN") {
		t.Errorf("stdout %q claims CLEAN on an empty match", stdout)
	}
}

// TestNonexistentDirFails pins the explicit-directory variant of the same
// bug class.
func TestNonexistentDirFails(t *testing.T) {
	code, _, stderr := capture(t, "./internal/no/such/dir")
	if code != 2 {
		t.Fatalf("exit %d for missing dir; want 2 (stderr: %s)", code, stderr)
	}
}

// TestRulesListsAllRules asserts -rules covers the runner-driven rules
// (hotalloc, allowstale), not just the per-package analyzers.
func TestRulesListsAllRules(t *testing.T) {
	code, stdout, _ := capture(t, "-rules")
	if code != 0 {
		t.Fatalf("-rules exited %d", code)
	}
	for _, rule := range []string{"wallclock", "globalrand", "maporder", "rawgo", "floatfold", "vtblock", "hotalloc", "allowstale"} {
		if !strings.Contains(stdout, rule) {
			t.Errorf("-rules output lacks %s", rule)
		}
	}
}

// TestCleanPackageJSON runs a real (small) module package through -json
// and checks the contract: clean tree → exit 0, no output lines.
func TestCleanPackageJSON(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the stdlib from source")
	}
	code, stdout, stderr := capture(t, "-json", "-nocache", "./internal/rng")
	if code != 0 {
		t.Fatalf("exit %d for clean package\nstdout: %s\nstderr: %s", code, stdout, stderr)
	}
	if strings.TrimSpace(stdout) != "" {
		t.Errorf("-json emitted %q for a clean package; want empty", stdout)
	}
}

// TestFindModuleRoot sanity-checks the go.mod walk from the test's own
// working directory.
func TestFindModuleRoot(t *testing.T) {
	root, err := findModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Errorf("reported module root %s has no go.mod", root)
	}
}
