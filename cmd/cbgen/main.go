// Command cbgen inspects and materializes CloudyBench datasets: it prints
// the scaling model for a scale factor and can dump sample rows in CSV for
// sanity-checking generators (the data itself is deterministic-on-demand,
// so "generation" costs nothing until rows are read).
//
// Usage:
//
//	cbgen -sf 10 [-seed 42] [-sample 5]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cloudybench/internal/core"
	"cloudybench/internal/engine"
	"cloudybench/internal/sim"
)

func main() {
	sf := flag.Int("sf", 1, "scale factor")
	seed := flag.Int64("seed", 42, "generator seed")
	sample := flag.Int("sample", 3, "sample rows to print per table (0 = none)")
	flag.Parse()

	d := core.NewDataset(*sf, *seed)
	fmt.Printf("CloudyBench dataset, SF%d (seed %d)\n\n", d.SF, d.Seed)
	fmt.Printf("  %-10s %12s\n", "table", "rows")
	fmt.Printf("  %-10s %12d\n", core.TableCustomer, d.Customers)
	fmt.Printf("  %-10s %12d\n", core.TableOrders, d.Orders)
	fmt.Printf("  %-10s %12d\n", core.TableOrderline, d.Orderlines)
	fmt.Printf("\n  raw size ~ %.2f GB\n\n", float64(d.RawBytes())/(1<<30))

	if *sample <= 0 {
		return
	}
	s := sim.New(time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC))
	db := engine.NewDB(s)
	if err := d.CreateTables(db); err != nil {
		fmt.Fprintln(os.Stderr, "cbgen:", err)
		os.Exit(1)
	}
	for _, name := range []string{core.TableCustomer, core.TableOrders, core.TableOrderline} {
		tbl := db.Table(name)
		var cols []string
		for _, c := range tbl.Schema.Cols {
			cols = append(cols, c.Name)
		}
		fmt.Printf("%s (%s)\n", name, strings.Join(cols, ","))
		for id := int64(1); id <= int64(*sample); id++ {
			row, _, ok := tbl.Get(engine.IntKey(id))
			if !ok {
				continue
			}
			var vals []string
			for _, v := range row {
				vals = append(vals, v.String())
			}
			fmt.Printf("  %s\n", strings.Join(vals, ","))
		}
		fmt.Println()
	}
}
