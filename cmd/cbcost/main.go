// Command cbcost is a resource-unit-cost calculator (paper Table III): it
// prices an arbitrary resource package at the standardized unit costs,
// itemized per resource and per billing granularity, enabling the
// horizontal cost comparisons the paper advocates.
//
// Usage:
//
//	cbcost -vcores 4 -mem 16 -storage 42 -iops 1000 -net 10 [-fabric tcp|rdma|local] [-hours 1] [-nodes 2]
package main

import (
	"flag"
	"fmt"
	"time"

	"cloudybench/internal/netsim"
	"cloudybench/internal/pricing"
)

func main() {
	vcores := flag.Float64("vcores", 4, "vCores per node")
	mem := flag.Float64("mem", 16, "memory GB per node")
	storage := flag.Float64("storage", 42, "storage GB per node")
	iops := flag.Float64("iops", 1000, "provisioned IOPS (cluster)")
	net := flag.Float64("net", 10, "network Gbps (cluster)")
	fabric := flag.String("fabric", "tcp", "network fabric: tcp, rdma, or local")
	hours := flag.Float64("hours", 1, "duration to price")
	nodes := flag.Int("nodes", 1, "compute nodes (CPU/memory/storage multiply)")
	flag.Parse()

	var f netsim.Fabric
	switch *fabric {
	case "tcp":
		f = netsim.TCP
	case "rdma":
		f = netsim.RDMA
	case "local":
		f = netsim.Local
	default:
		fmt.Printf("unknown fabric %q (tcp, rdma, local)\n", *fabric)
		return
	}
	node := pricing.Package{
		VCores: *vcores, MemoryGB: *mem, StorageGB: *storage,
		IOPS: *iops, NetGbps: *net, Fabric: f,
	}
	pkg := pricing.ClusterPackage(node, *nodes)
	d := time.Duration(*hours * float64(time.Hour))
	b := pricing.CostBreakdown(pkg, d)
	perMin := pricing.PerMinuteBreakdown(pkg)

	fmt.Printf("Resource package (%d node(s)): %.2g vCores, %.2g GB RAM, %.2g GB storage, %.0f IOPS, %.2g Gbps %s\n\n",
		*nodes, pkg.VCores, pkg.MemoryGB, pkg.StorageGB, pkg.IOPS, pkg.NetGbps, *fabric)
	fmt.Printf("  %-9s %14s %14s\n", "resource", "$/minute", fmt.Sprintf("$ per %.3gh", *hours))
	fmt.Printf("  %-9s %14.6f %14.6f\n", "cpu", perMin.CPU, b.CPU)
	fmt.Printf("  %-9s %14.6f %14.6f\n", "memory", perMin.Memory, b.Memory)
	fmt.Printf("  %-9s %14.6f %14.6f\n", "storage", perMin.Storage, b.Storage)
	fmt.Printf("  %-9s %14.6f %14.6f\n", "iops", perMin.IOPS, b.IOPS)
	fmt.Printf("  %-9s %14.6f %14.6f\n", "network", perMin.Network, b.Network)
	fmt.Printf("  %-9s %14.6f %14.6f\n", "total", perMin.Total(), b.Total())
}
